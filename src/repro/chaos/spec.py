"""Declarative chaos campaigns: what fails, where, and on what clock.

A :class:`Campaign` is a named bundle of :class:`EventSpec` templates.
Each template names an action from the chaos action registry, a target
(a host, a link endpoint pair, a sensor source, or nothing), an optional
duration after which the action is reverted, and a :class:`Schedule`
that says *when* occurrences fire.

Schedules are declarative so they can be resolved reproducibly: any
randomness (periodic jitter, Poisson gaps) is drawn from a seeded
stream the engine fetches from the simulator's stream registry under
``chaos/<campaign>/<event>`` — two runs with the same root seed resolve
byte-identical timelines.
"""

__all__ = ["Campaign", "EventSpec", "Schedule"]


class Schedule:
    """When a chaos event template fires within the campaign horizon.

    Build one with the classmethods; :meth:`resolve` turns it into a
    concrete sorted list of fire times given a stream and a horizon.
    """

    KINDS = ("at", "periodic", "poisson")

    def __init__(self, kind, **params):
        if kind not in self.KINDS:
            raise ValueError(
                f"unknown schedule kind {kind!r}; expected one of "
                f"{self.KINDS}"
            )
        self.kind = kind
        self.params = dict(params)

    def __repr__(self):
        inner = ", ".join(
            f"{key}={value!r}" for key, value in sorted(self.params.items())
        )
        return f"<Schedule {self.kind} {inner}>"

    @classmethod
    def at(cls, *times):
        """Fire at explicit simulation times (deterministic, no draws)."""
        if not times:
            raise ValueError("need at least one fire time")
        clean = sorted(float(t) for t in times)
        if clean[0] < 0:
            raise ValueError("fire times must be non-negative")
        return cls("at", times=tuple(clean))

    @classmethod
    def periodic(cls, start, period, count=None, jitter=0.0):
        """Fire every ``period`` seconds from ``start``.

        ``jitter`` is a fraction of the period: each occurrence is
        displaced by a uniform draw in ``[-jitter, +jitter] * period``.
        ``count`` bounds occurrences (None = until the horizon).
        """
        if start < 0:
            raise ValueError("start must be non-negative")
        if period <= 0:
            raise ValueError("period must be positive")
        if not 0.0 <= jitter < 0.5:
            raise ValueError("jitter must be in [0, 0.5)")
        if count is not None and count < 1:
            raise ValueError("count must be at least 1")
        return cls(
            "periodic", start=float(start), period=float(period),
            count=count, jitter=float(jitter),
        )

    @classmethod
    def poisson(cls, rate, start=0.0, count=None):
        """Fire as a Poisson process of ``rate`` events/second from
        ``start`` until the horizon (or ``count`` occurrences)."""
        if rate <= 0:
            raise ValueError("rate must be positive")
        if start < 0:
            raise ValueError("start must be non-negative")
        if count is not None and count < 1:
            raise ValueError("count must be at least 1")
        return cls(
            "poisson", rate=float(rate), start=float(start), count=count
        )

    def resolve(self, stream, horizon):
        """Concrete sorted fire times in ``[0, horizon)``.

        All randomness comes from ``stream``; a given (seed, horizon)
        pair always resolves the same timeline.
        """
        if horizon <= 0:
            raise ValueError("horizon must be positive")
        if self.kind == "at":
            return [t for t in self.params["times"] if t < horizon]
        if self.kind == "periodic":
            start = self.params["start"]
            period = self.params["period"]
            count = self.params["count"]
            jitter = self.params["jitter"]
            times = []
            tick = start
            while tick < horizon and (count is None or len(times) < count):
                fire = tick
                if jitter > 0.0:
                    fire += stream.uniform(-jitter, jitter) * period
                if 0.0 <= fire < horizon:
                    times.append(fire)
                tick += period
            return sorted(times)
        # poisson
        rate = self.params["rate"]
        count = self.params["count"]
        times = []
        clock = self.params["start"]
        while count is None or len(times) < count:
            clock += stream.expovariate(rate)
            if clock >= horizon:
                break
            times.append(clock)
        return times


class EventSpec:
    """One named failure template inside a campaign.

    Parameters
    ----------
    name:
        Template name, unique within the campaign; also selects the
        seeded stream (``chaos/<campaign>/<name>``) used to resolve the
        schedule.
    action:
        Key into the chaos action registry (``repro.chaos.actions``).
    target:
        Whatever the action expects: a host name, an ``(a, b)`` node
        pair for link actions, a sensor source, or None for grid-wide
        actions (MDS blackout, NWS freeze).
    schedule:
        A :class:`Schedule` for the occurrence times.
    duration:
        Seconds after which each occurrence is reverted; None means the
        condition holds until the engine stops.
    params:
        Extra keyword arguments forwarded to the action (for example
        ``utilisation`` for a brownout level).
    """

    def __init__(self, name, action, schedule, target=None, duration=None,
                 params=None):
        if not name:
            raise ValueError("event spec needs a name")
        if duration is not None and duration <= 0:
            raise ValueError("duration must be positive (or None)")
        self.name = name
        self.action = action
        self.schedule = schedule
        self.target = target
        self.duration = None if duration is None else float(duration)
        self.params = dict(params or {})

    def __repr__(self):
        return (
            f"<EventSpec {self.name}: {self.action} on {self.target!r} "
            f"{self.schedule!r}>"
        )


class Campaign:
    """A named, seeded set of chaos event templates.

    The campaign itself is pure data — handing the same campaign to two
    engines over same-seed simulators produces identical timelines.
    """

    def __init__(self, name, events, horizon=3600.0):
        if not name:
            raise ValueError("campaign needs a name")
        if horizon <= 0:
            raise ValueError("horizon must be positive")
        events = tuple(events)
        seen = set()
        for spec in events:
            if spec.name in seen:
                raise ValueError(
                    f"duplicate event spec name {spec.name!r} in "
                    f"campaign {name!r}"
                )
            seen.add(spec.name)
        self.name = name
        self.events = events
        self.horizon = float(horizon)

    def __repr__(self):
        return (
            f"<Campaign {self.name!r}: {len(self.events)} templates, "
            f"horizon={self.horizon:g}s>"
        )

    def describe(self):
        """Human-readable multi-line summary."""
        lines = [f"campaign {self.name} (horizon {self.horizon:g}s)"]
        for spec in self.events:
            duration = (
                "until stop" if spec.duration is None
                else f"{spec.duration:g}s"
            )
            lines.append(
                f"  {spec.name}: {spec.action} on {spec.target!r} "
                f"for {duration}, {spec.schedule!r}"
            )
        return "\n".join(lines)
