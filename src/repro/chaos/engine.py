"""The chaos campaign engine: seeded failure schedules over sim time.

The engine resolves a :class:`~repro.chaos.spec.Campaign` into a
concrete timeline (all randomness from the simulator's seeded stream
registry under ``chaos/<campaign>/<event>``), then drives it as a
simulation process: at each fire time the named action is applied, and
— when the template has a duration — a revert timer is armed to undo
it.

Everything the engine does is observable and reproducible:

* every injection and revert is appended to :attr:`ChaosEngine.trace`
  and emitted as a ``chaos.inject`` / ``chaos.revert`` event through
  the obs layer;
* :meth:`ChaosEngine.trace_digest` hashes the trace with the PR-3
  determinism canonicaliser, so same-seed runs can be diffed by digest;
* every timer the engine arms carries a ``guard_tag``, so an engine
  that is abandoned without :meth:`stop` shows up in the
  :func:`~repro.analysis.sanitizers.leaks.check_leaks` sweep as an
  ``armed-guard`` leak.

Call :meth:`stop` when the workload is done: it halts the driver,
cancels outstanding timers, and reverts every condition still in
force (including ``duration=None`` conditions that only stop() undoes).
"""

import logging

from repro.analysis.sanitizers.determinism import trace_digest
from repro.chaos.actions import ACTIONS, ChaosContext
from repro.sim import Interrupt

__all__ = ["ChaosEngine"]

logger = logging.getLogger("repro.chaos.engine")


class ChaosEngine:
    """Schedules and applies one campaign against one grid.

    Parameters
    ----------
    grid:
        The :class:`~repro.grid.DataGrid` under test.
    campaign:
        A :class:`~repro.chaos.spec.Campaign`.
    testbed:
        Optional :class:`~repro.testbed.builder.Testbed`; required only
        when the campaign uses monitoring-layer actions.
    health:
        Optional :class:`~repro.integrity.health.ReplicaHealthRegistry`;
        host-layer actions report outage windows to it so clients get
        honest ``retry_after`` hints.
    """

    def __init__(self, grid, campaign, testbed=None, health=None):
        unknown = [
            spec.action for spec in campaign.events
            if spec.action not in ACTIONS
        ]
        if unknown:
            raise ValueError(
                f"campaign {campaign.name!r} names unknown action(s): "
                f"{sorted(set(unknown))}"
            )
        self.grid = grid
        self.sim = grid.sim
        self.campaign = campaign
        self.ctx = ChaosContext(grid, testbed, health=health)
        #: Resolved (time, spec, occurrence) timeline; filled by start().
        self.timeline = []
        #: Chronological record of every inject/revert, as dicts.
        self.trace = []
        self.injections = 0
        self.reverts = 0
        self.process = None
        #: Sim time at start(); schedule times are relative to it.
        self.started_at = None
        self._active = {}
        self._next_token = 0
        self._revert_processes = []
        self._pending_timers = []
        self._started = False

    def __repr__(self):
        state = "running" if self.is_running else "idle"
        return (
            f"<ChaosEngine {self.campaign.name!r} {state}, "
            f"{self.injections} injected>"
        )

    @property
    def is_running(self):
        return self.process is not None and self.process.is_alive

    # -- lifecycle ---------------------------------------------------------

    def start(self):
        """Resolve the timeline and launch the driver process."""
        if self._started:
            raise RuntimeError("chaos engine already started")
        self._started = True
        self.started_at = self.sim.now
        entries = []
        for index, spec in enumerate(self.campaign.events):
            stream = self.sim.streams.get(
                f"chaos/{self.campaign.name}/{spec.name}"
            )
            for occurrence, time in enumerate(
                spec.schedule.resolve(stream, self.campaign.horizon)
            ):
                entries.append((time, index, occurrence, spec))
        entries.sort(key=lambda entry: entry[:3])
        self.timeline = [
            (time, spec, occurrence)
            for time, index, occurrence, spec in entries
        ]
        logger.debug(
            "campaign %s resolved to %d occurrences",
            self.campaign.name, len(self.timeline),
        )
        self.process = self.sim.process(self._driver())
        return self

    def stop(self):
        """Halt the campaign and revert every outstanding condition.

        Safe to call whether or not the simulator will run again:
        pending timers are cancelled directly, so nothing the engine
        armed can hold the event queue open or trip the leak sweep.
        """
        if self.process is not None and self.process.is_alive:
            self.process.interrupt(cause="chaos-stop")
        for proc in self._revert_processes:
            if proc.is_alive:
                proc.interrupt(cause="chaos-stop")
        for timer in self._pending_timers:
            if not timer.processed and not timer.cancelled:
                timer.cancel()
        self._pending_timers.clear()
        for token in sorted(self._active):
            self._revert(token)

    # -- internals ---------------------------------------------------------

    def _timer(self, delay, tag):
        timer = self.sim.timeout(delay)
        timer.guard_tag = tag
        self._pending_timers.append(timer)
        return timer

    def _retire(self, timer):
        if timer in self._pending_timers:
            self._pending_timers.remove(timer)

    def _driver(self):
        tag = f"chaos-driver:{self.campaign.name}"
        for time, spec, occurrence in self.timeline:
            delay = self.started_at + time - self.sim.now
            if delay > 0:
                timer = self._timer(delay, tag)
                try:
                    yield timer
                except Interrupt:
                    if not timer.processed and not timer.cancelled:
                        timer.cancel()
                    return
                finally:
                    self._retire(timer)
            self._fire(spec, occurrence)

    def _fire(self, spec, occurrence):
        action = ACTIONS[spec.action]
        self.ctx.current_duration = spec.duration
        try:
            revert = action(self.ctx, spec.target, **spec.params)
        finally:
            self.ctx.current_duration = None
        self._record("inject", spec, occurrence)
        self.injections += 1
        if revert is None:
            return
        token = self._next_token
        self._next_token += 1
        self._active[token] = (spec, occurrence, revert)
        if spec.duration is not None:
            self._revert_processes.append(
                self.sim.process(self._revert_later(token, spec))
            )

    def _revert_later(self, token, spec):
        timer = self._timer(
            spec.duration, f"chaos-revert:{spec.name}"
        )
        try:
            yield timer
        except Interrupt:
            if not timer.processed and not timer.cancelled:
                timer.cancel()
        finally:
            self._retire(timer)
        self._revert(token)

    def _revert(self, token):
        entry = self._active.pop(token, None)
        if entry is None:
            return
        spec, occurrence, revert = entry
        revert()
        self._record("revert", spec, occurrence)
        self.reverts += 1

    def _record(self, phase, spec, occurrence):
        record = {
            "time": self.sim.now,
            "campaign": self.campaign.name,
            "event": spec.name,
            "occurrence": occurrence,
            "action": spec.action,
            "target": spec.target,
            "phase": phase,
        }
        self.trace.append(record)
        obs = self.grid.obs
        if obs.enabled:
            obs.events.emit(f"chaos.{phase}", **record)
            obs.metrics.counter(
                f"chaos.{phase}s", action=spec.action
            ).inc()
        logger.debug(
            "%s %s/%s #%d (%s on %r) at t=%.6g", phase,
            self.campaign.name, spec.name, occurrence, spec.action,
            spec.target, self.sim.now,
        )

    # -- reproducibility ---------------------------------------------------

    def trace_digest(self):
        """SHA-256 digest of the canonicalised inject/revert trace.

        Two same-seed runs of the same campaign over the same testbed
        must produce identical digests — the determinism harness and
        the chaos conformance tests assert exactly that.
        """
        return trace_digest(self.trace)
