"""The chaos action registry: how each failure is applied and undone.

Every action is a function ``action(ctx, target, **params)`` returning a
zero-argument *revert* callable (or ``None`` for irreversible actions).
``ctx`` is a :class:`ChaosContext` giving access to the grid and, when
supplied, the monitoring stack of an assembled testbed.

Reverts restore exactly the state the action saved — a brownout revert
puts back the background utilisation it found, not zero, so chaos
composes with the testbed's own load generators.
"""

__all__ = ["ACTIONS", "ChaosContext", "chaos_action"]

#: Registry of action name -> callable.
ACTIONS = {}


def chaos_action(name):
    """Decorator registering an action under ``name``."""
    def register(function):
        if name in ACTIONS:
            raise ValueError(f"duplicate chaos action {name!r}")
        ACTIONS[name] = function
        return function
    return register


class ChaosContext:
    """What actions may touch: the grid, and optionally the testbed.

    ``testbed`` (a :class:`repro.testbed.builder.Testbed`) is required
    only by monitoring-layer actions (sensor blackout, MDS blackout,
    NWS freeze); network and host actions need just the grid.
    ``health`` (a :class:`repro.integrity.health.ReplicaHealthRegistry`)
    lets host actions report outage windows, so ``retry_after`` hints
    reflect chaos the engine itself scheduled.
    """

    def __init__(self, grid, testbed=None, health=None):
        self.grid = grid
        self.testbed = testbed
        self.health = health
        #: Duration of the occurrence being fired (set by the engine
        #: just before invoking the action; None for one-shot events).
        self.current_duration = None

    def _duplex(self, target):
        """Both directed links of an ``(a, b)`` endpoint pair."""
        if not (isinstance(target, (tuple, list)) and len(target) == 2):
            raise ValueError(
                f"link action target must be an (a, b) pair, got {target!r}"
            )
        a, b = target
        topology = self.grid.topology
        links = []
        for src, dst in ((a, b), (b, a)):
            if topology.has_link(src, dst):
                links.append(topology.link(src, dst))
        if not links:
            raise KeyError(f"no link between {a!r} and {b!r}")
        return links

    def _adjacent_links(self, host_name):
        """Every directed link touching ``host_name``."""
        return [
            link for link in self.grid.topology.links()
            if host_name in (link.src, link.dst)
        ]

    def _require_testbed(self, action):
        if self.testbed is None:
            raise ValueError(
                f"chaos action {action!r} needs a testbed-aware context"
            )
        return self.testbed


# -- network layer ---------------------------------------------------------

@chaos_action("link_down")
def link_down(ctx, target):
    """Fail both directions of the link between two nodes."""
    links = ctx._duplex(target)
    previously_up = [link for link in links if link.is_up]
    for link in previously_up:
        link.set_down()
    ctx.grid.network.rebalance()

    def revert():
        for link in previously_up:
            link.set_up()
        ctx.grid.network.rebalance()
    return revert


@chaos_action("bandwidth_brownout")
def bandwidth_brownout(ctx, target, utilisation=0.85):
    """Soak both directions of a link in background cross-traffic."""
    if not 0.0 <= utilisation < 1.0:
        raise ValueError("brownout utilisation must be in [0, 1)")
    links = ctx._duplex(target)
    saved = []
    for link in links:
        before = link.background_utilisation
        applied = max(before, utilisation)
        link.background_utilisation = applied
        saved.append((link, before, applied))
    ctx.grid.network.rebalance()

    def revert():
        # Restore only if nothing else rewrote the level since —
        # overlapping occurrences must not resurrect stale values.
        for link, before, applied in saved:
            if link.background_utilisation == applied:
                link.background_utilisation = before
        ctx.grid.network.rebalance()
    return revert


# -- host layer ------------------------------------------------------------

@chaos_action("host_crash")
def host_crash(ctx, target):
    """Crash a host and sever its network attachment.

    The host model itself cannot refuse traffic mid-flow, so the crash
    also fails every adjacent link: in-flight transfers stall (and trip
    their attempt timeouts) exactly as when a real machine drops off
    the switch.  New control connections are refused by the host's
    ``is_up`` check.  Reboot restores only the links the crash downed.
    """
    host = ctx.grid.host(target)
    adjacent = ctx._adjacent_links(target)
    downed = [link for link in adjacent if link.is_up]
    if host.is_up:
        host.crash()
    for link in downed:
        link.set_down()
    ctx.grid.network.rebalance()
    if ctx.health is not None:
        ctx.health.note_host_down(
            target, expected_duration=ctx.current_duration
        )

    def revert():
        if not host.is_up:
            host.reboot()
        for link in downed:
            link.set_up()
        ctx.grid.network.rebalance()
        if ctx.health is not None:
            ctx.health.note_host_up(target)
    return revert


@chaos_action("disk_slowdown")
def disk_slowdown(ctx, target, utilisation=0.9):
    """Saturate a host's disk with background I/O."""
    disk = ctx.grid.host(target).disk
    saved = disk.background_utilisation
    applied = max(saved, utilisation)
    disk.set_background_utilisation(applied)

    def revert():
        if disk.background_utilisation == applied:
            disk.set_background_utilisation(saved)
    return revert


@chaos_action("cpu_spike")
def cpu_spike(ctx, target, cores_busy=None):
    """Pin a host's CPU with background load (default: all cores)."""
    cpu = ctx.grid.host(target).cpu
    saved = cpu.background_busy_cores
    level = float(cpu.cores) if cores_busy is None else float(cores_busy)
    applied = max(saved, level)
    cpu.set_background_busy(applied)

    def revert():
        if cpu.background_busy_cores == applied:
            cpu.set_background_busy(saved)
    return revert


# -- storage integrity layer ------------------------------------------------

def _stored_file(ctx, target, action):
    """Resolve a ``(host, file)`` corruption target to its StoredFile."""
    if not (isinstance(target, (tuple, list)) and len(target) == 2):
        raise ValueError(
            f"{action} target must be a (host, file) pair, got {target!r}"
        )
    host_name, file_name = target
    fs = ctx.grid.host(host_name).filesystem
    if file_name not in fs:
        raise KeyError(f"{host_name} holds no file {file_name!r}")
    return fs.stored(file_name)


@chaos_action("bit_rot")
def bit_rot(ctx, target, offset=None, length=1.0):
    """Rot ``length`` bytes of a stored replica starting at ``offset``.

    ``target`` is a ``(host, file)`` pair.  ``offset=None`` rots the
    middle of the file.  Irreversible — only a repair from a verified
    source heals it; a single rotten byte fails its whole manifest
    block, exactly like a flipped bit under a real block checksum.
    """
    stored = _stored_file(ctx, target, "bit_rot")
    if offset is None:
        offset = stored.size_bytes / 2
    stored.corrupt_range(offset, offset + float(length))
    return None


@chaos_action("silent_truncation")
def silent_truncation(ctx, target, keep_fraction=0.5):
    """Silently truncate a replica: bytes past the kept prefix are
    garbage while the directory entry still advertises the full size.

    ``target`` is a ``(host, file)`` pair.  Irreversible.
    """
    if not 0.0 <= keep_fraction <= 1.0:
        raise ValueError("keep_fraction must be in [0, 1]")
    stored = _stored_file(ctx, target, "silent_truncation")
    stored.truncate_valid(stored.size_bytes * float(keep_fraction))
    return None


@chaos_action("stale_replica_version")
def stale_replica_version(ctx, target, versions_behind=1):
    """Roll a replica back to an earlier content generation.

    Models a replica that missed an update: its bytes are internally
    consistent but belong to version ``current - versions_behind``, so
    every block fails verification against the published manifest.
    ``target`` is a ``(host, file)`` pair.  Irreversible.
    """
    if versions_behind < 1:
        raise ValueError("versions_behind must be >= 1")
    stored = _stored_file(ctx, target, "stale_replica_version")
    stored.version -= int(versions_behind)
    return None


# -- monitoring layer ------------------------------------------------------

@chaos_action("sensor_blackout")
def sensor_blackout(ctx, target="*"):
    """Pause NWS sensors: readings stop, forecasts age in place.

    ``target`` selects sensors by source host name (``"*"`` pauses the
    whole fleet).  Paused sensors draw no randomness, so the blackout
    does not shift any seeded stream.
    """
    testbed = ctx._require_testbed("sensor_blackout")
    matching = [
        sensor for sensor in testbed.sensors
        if target == "*" or sensor.source == target
    ]
    if not matching:
        raise KeyError(f"no sensors match target {target!r}")
    paused = [sensor for sensor in matching if not sensor.paused]
    for sensor in paused:
        sensor.pause()

    def revert():
        for sensor in paused:
            sensor.resume()
    return revert


@chaos_action("mds_blackout")
def mds_blackout(ctx, target=None):
    """Take the GIIS down: CPU-factor queries are refused."""
    testbed = ctx._require_testbed("mds_blackout")
    giis = testbed.giis
    was_up = giis.is_available
    if was_up:
        giis.set_down()

    def revert():
        if was_up:
            giis.set_up()
    return revert


@chaos_action("nws_freeze")
def nws_freeze(ctx, target=None):
    """Freeze the NWS memory: arriving measurements are dropped.

    Unlike a sensor blackout this hits every series at once — the
    stale-reading window of the monitor-blackout campaign.
    """
    testbed = ctx._require_testbed("nws_freeze")
    memory = testbed.nws_memory
    was_live = not memory.is_frozen
    if was_live:
        memory.freeze()

    def revert():
        if was_live:
            memory.thaw()
    return revert
