"""Canned chaos campaigns over the paper's testbed.

Three ready-made campaigns exercise the three failure surfaces the
degradation layer exists for, each against the Table 1 topology
(client ``alpha1`` at THU choosing between ``alpha4``, ``hit0`` and
``lz02``):

* :func:`flaky_wan_link` — the WAN uplink of a replica site flaps and
  browns out: transfers stall mid-chunk, restart markers and backoff
  carry them through;
* :func:`hot_spot_server` — the paper's winning replica host is
  periodically pinned (CPU) and saturated (disk): cost-model selection
  should route around the hot spot while static policies keep hitting
  it;
* :func:`monitor_blackout` — sensors pause, the NWS memory freezes and
  the GIIS goes dark: selection must keep answering from stale and
  default factors without a single unhandled exception;
* :func:`replica_corruption` — replicas silently rot, truncate and
  drift to stale versions: the integrity layer must catch every bad
  block in the data channel, fail over, quarantine and repair.

Each factory returns a pure-data :class:`~repro.chaos.spec.Campaign`;
feed it to a :class:`~repro.chaos.engine.ChaosEngine`.
"""

from repro.chaos.spec import Campaign, EventSpec, Schedule
from repro.testbed.builder import BACKBONE

__all__ = [
    "CAMPAIGNS",
    "flaky_wan_link",
    "hot_spot_server",
    "monitor_blackout",
    "regional_brownout",
    "replica_corruption",
]


def _uplink(site):
    """The (switch, backbone) endpoint pair of a site's WAN link."""
    return (f"{site.lower()}-switch", BACKBONE)


def flaky_wan_link(site="HIT", horizon=600.0, outage=20.0,
                   brownout=0.85):
    """WAN outages and brownouts on one site's uplink.

    A first outage fires deterministically early (so even short
    workloads meet it); further outages arrive as a Poisson process.
    Between outages, periodic brownouts soak the link in cross-traffic.
    All times scale with the horizon so quick runs see the same shape.
    """
    link = _uplink(site)
    return Campaign(
        f"flaky-wan-{site.lower()}",
        [
            EventSpec(
                "first-outage", "link_down",
                Schedule.at(0.05 * horizon),
                target=link, duration=outage,
            ),
            EventSpec(
                "outage", "link_down",
                Schedule.poisson(
                    rate=5.0 / horizon, start=0.15 * horizon
                ),
                target=link, duration=outage,
            ),
            EventSpec(
                "brownout", "bandwidth_brownout",
                Schedule.periodic(
                    start=0.1 * horizon, period=0.25 * horizon,
                    jitter=0.2,
                ),
                target=link, duration=0.075 * horizon,
                params={"utilisation": brownout},
            ),
        ],
        horizon=horizon,
    )


def hot_spot_server(host="alpha4", horizon=600.0):
    """Recurring CPU pinning and disk saturation on one replica host.

    Default target is ``alpha4`` — the candidate the paper's Table 1
    crowns — so a load-blind policy keeps choosing a server that chaos
    has turned into the worst one.
    """
    return Campaign(
        f"hot-spot-{host}",
        [
            EventSpec(
                "cpu-pin", "cpu_spike",
                Schedule.periodic(
                    start=0.05 * horizon, period=0.25 * horizon,
                    jitter=0.2,
                ),
                target=host, duration=0.125 * horizon,
            ),
            EventSpec(
                "disk-saturate", "disk_slowdown",
                Schedule.periodic(
                    start=0.12 * horizon, period=0.3 * horizon,
                    jitter=0.2,
                ),
                target=host, duration=0.1 * horizon,
                params={"utilisation": 0.95},
            ),
        ],
        horizon=horizon,
    )


def monitor_blackout(horizon=600.0, start=None, window=None):
    """Every monitoring source goes dark for one long window.

    Sensors pause, the NWS memory drops what little still arrives, and
    the GIIS refuses queries for most of the window.  No transfer may
    fail: selection degrades to stale/default factors and carries on.
    """
    if start is None:
        start = 0.1 * horizon
    if window is None:
        window = 0.5 * horizon
    return Campaign(
        "monitor-blackout",
        [
            EventSpec(
                "sensors-dark", "sensor_blackout",
                Schedule.at(start), target="*", duration=window,
            ),
            EventSpec(
                "memory-frozen", "nws_freeze",
                Schedule.at(start), duration=window,
            ),
            EventSpec(
                "giis-down", "mds_blackout",
                Schedule.at(start + 0.1 * window),
                duration=0.8 * window,
            ),
        ],
        horizon=horizon,
    )


def replica_corruption(logical_name, replica_hosts, horizon=600.0,
                       crash_host=None):
    """Storage-integrity chaos against one logical file's replica set.

    The first replica's copy rots early and keeps rotting at fresh
    offsets, the second silently truncates, the third drifts to a stale
    content generation mid-run; optionally one replica host also
    crashes and reboots, exercising the health registry's outage
    windows.  All damage is irreversible by design — only the repair
    service heals it, which is exactly what the fig_integrity
    experiment measures.
    """
    hosts = list(replica_hosts)
    if len(hosts) < 3:
        raise ValueError("replica_corruption needs >= 3 replica hosts")
    events = [
        EventSpec(
            "rot-early", "bit_rot",
            Schedule.at(0.05 * horizon),
            target=(hosts[0], logical_name),
            params={"offset": None, "length": 1.0},
        ),
        EventSpec(
            "rot-recurring", "bit_rot",
            Schedule.poisson(rate=4.0 / horizon, start=0.2 * horizon),
            target=(hosts[0], logical_name),
            params={"offset": 0.0, "length": 1.0},
        ),
        EventSpec(
            "truncate", "silent_truncation",
            Schedule.at(0.3 * horizon),
            target=(hosts[1], logical_name),
            params={"keep_fraction": 0.5},
        ),
        EventSpec(
            "go-stale", "stale_replica_version",
            Schedule.at(0.55 * horizon),
            target=(hosts[2], logical_name),
            params={"versions_behind": 1},
        ),
    ]
    if crash_host is not None:
        events.append(
            EventSpec(
                "replica-crash", "host_crash",
                Schedule.at(0.7 * horizon),
                target=crash_host, duration=0.1 * horizon,
            )
        )
    return Campaign(
        f"replica-corruption-{logical_name}", events, horizon=horizon
    )


def regional_brownout(spec, region_name, horizon=600.0, start=None,
                      window=None, utilisation=0.9, crash_hosts=(),
                      include_wan=True):
    """Brown out one whole region of a generated topology.

    Unlike the Table 1 campaigns above, this factory works against any
    :class:`~repro.testbed.topology.spec.TopologySpec`: every site
    uplink inside ``region_name`` — and, with ``include_wan``, every
    WAN link touching the region's gateway router — is soaked in
    cross-traffic for one long window, optionally crashing named hosts
    mid-window.  Replica hosts inside the region keep *answering*
    (connections are not refused) — they just become slow enough under
    load that attempts trip their timeouts, which is precisely the
    grey failure circuit breakers exist for.  ``include_wan=False``
    confines the damage to the region's own uplinks; in a transit-mesh
    topology the gateway's WAN links carry third-party traffic, so
    browning them degrades paths far beyond the region.
    """
    regions = {region.name: region for region in spec.regions}
    region = regions.get(region_name)
    if region is None:
        raise ValueError(
            f"no region {region_name!r} in topology "
            f"(have {sorted(regions)})"
        )
    if start is None:
        start = 0.2 * horizon
    if window is None:
        window = 0.5 * horizon
    events = []
    for site in region.sites:
        events.append(EventSpec(
            f"uplink-brownout-{site.name.lower()}", "bandwidth_brownout",
            Schedule.at(start),
            target=(site.switch_name, region.router_name),
            duration=window, params={"utilisation": utilisation},
        ))
    seen_pairs = set()
    for link in (spec.links if include_wan else ()):
        if region.router_name not in (link.src, link.dst):
            continue
        pair = frozenset((link.src, link.dst))
        if pair in seen_pairs:
            continue
        seen_pairs.add(pair)
        events.append(EventSpec(
            f"wan-brownout-{link.src.lower()}-{link.dst.lower()}",
            "bandwidth_brownout",
            Schedule.at(start), target=(link.src, link.dst),
            duration=window, params={"utilisation": utilisation},
        ))
    for host in crash_hosts:
        events.append(EventSpec(
            f"crash-{host}", "host_crash",
            Schedule.at(start + 0.25 * window),
            target=host, duration=0.5 * window,
        ))
    return Campaign(
        f"regional-brownout-{region.name.lower()}", events,
        horizon=horizon,
    )


#: Campaign factories by id (the fig_chaos experiment iterates these).
CAMPAIGNS = {
    "flaky_wan_link": flaky_wan_link,
    "hot_spot_server": hot_spot_server,
    "monitor_blackout": monitor_blackout,
}
