"""Tenant identity, per-tenant accounting, and fairness metrics.

Every front-door request carries a tenant name (the experiment's
virtual organisations — CMS, ATLAS, ... in Data Grid terms).  Each
tenant gets its own token bucket sized from its
:class:`TenantSpec`, and its own :class:`TenantStats` so the exhibit
can report *who* got served, not just how much.

Percentiles use the nearest-rank definition on the fully-materialised
latency list — exact and deterministic, no streaming sketch whose
output would depend on arrival order internals.  Fairness is Jain's
index over per-tenant service ratios: 1.0 when every tenant gets the
same fraction of its demand served, 1/n under total capture by one.
"""

__all__ = [
    "TenantSpec",
    "TenantStats",
    "jain_fairness",
    "percentile",
]


def percentile(values, q):
    """Nearest-rank percentile of ``values`` (not necessarily sorted).

    ``q`` in [0, 100].  Returns NaN for an empty list.
    """
    if not 0 <= q <= 100:
        raise ValueError("q must be in [0, 100]")
    if not values:
        return float("nan")
    ordered = sorted(values)
    if q == 0:
        return ordered[0]
    rank = q / 100.0 * len(ordered)
    index = int(rank) if rank == int(rank) else int(rank) + 1
    return ordered[min(index, len(ordered)) - 1]


def jain_fairness(shares):
    """Jain's fairness index over non-negative shares.

    ``(sum x)^2 / (n * sum x^2)``; 1.0 = perfectly even, ``1/n`` =
    one tenant captured everything.  NaN for no tenants or all-zero
    shares.
    """
    shares = list(shares)
    if not shares:
        return float("nan")
    if any(share < 0 for share in shares):
        raise ValueError("shares must be non-negative")
    total = sum(shares)
    squares = sum(share * share for share in shares)
    if squares == 0.0:
        return float("nan")
    return (total * total) / (len(shares) * squares)


class TenantSpec:
    """Admission envelope of one tenant.

    Parameters
    ----------
    name:
        Tenant identity carried by its requests.
    rate:
        Sustained admission rate, requests/second.
    burst:
        Token-bucket burst (defaults to 2x the rate).
    weight:
        Relative share used when reporting fairness (a tenant paying
        for twice the rate is *entitled* to twice the goodput).
    """

    __slots__ = ("name", "rate", "burst", "weight")

    def __init__(self, name, rate, burst=None, weight=1.0):
        if rate <= 0:
            raise ValueError("rate must be positive")
        if weight <= 0:
            raise ValueError("weight must be positive")
        self.name = name
        self.rate = float(rate)
        self.burst = float(burst) if burst is not None else 2.0 * rate
        self.weight = float(weight)

    def __repr__(self):
        return (
            f"<TenantSpec {self.name} {self.rate:g}/s "
            f"burst={self.burst:g}>"
        )


class TenantStats:
    """Counters and latency samples for one tenant."""

    __slots__ = (
        "name", "offered", "admitted", "shed_throttle", "shed_queue",
        "completed", "failed", "dedup_joined", "dedup_replayed",
        "dedup_served", "latencies", "payload_bytes",
    )

    def __init__(self, name):
        self.name = name
        self.offered = 0
        self.admitted = 0
        self.shed_throttle = 0
        self.shed_queue = 0
        self.completed = 0
        self.failed = 0
        self.dedup_joined = 0
        self.dedup_replayed = 0
        #: Joins/replays whose shared outcome was a success: demand
        #: served without moving any extra bytes.
        self.dedup_served = 0
        #: Arrival-to-outcome seconds of settled requests, in
        #: settlement order.
        self.latencies = []
        self.payload_bytes = 0.0

    def __repr__(self):
        return (
            f"<TenantStats {self.name}: {self.offered} offered, "
            f"{self.completed} completed>"
        )

    @property
    def shed(self):
        return self.shed_throttle + self.shed_queue

    def service_ratio(self):
        """Fraction of offered demand that was served.

        Dedup hits count: a joiner got its file without moving extra
        bytes, which is service, not failure.
        """
        if self.offered == 0:
            return 0.0
        return (self.completed + self.dedup_served) / self.offered

    def latency_percentile(self, q):
        return percentile(self.latencies, q)
