"""Per-replica circuit breakers: closed / open / half-open.

The health registry (:mod:`repro.integrity.health`) quarantines
replicas that served *corrupt* data; the breaker layer sits in front of
it and reacts to *operational* failure — timeouts, refused connections,
exhausted retries — which under a regional brownout arrive long before
any integrity signal.  A breaker trips when the failure rate over a
sliding outcome window crosses a threshold, rejects instantly while
open (no connect attempts pile onto a dying replica), and after a
cooldown admits a bounded number of *probe* requests whose outcomes
decide between closing and re-opening.

The state machine is pure — callers pass ``now`` in — so arbitrary
interleavings can be property-tested without a simulator.  Liveness
invariants the tests pin down:

* an **open** breaker always transitions to half-open once the cooldown
  elapses — no interleaving of late results wedges it open;
* **half-open** admits *exactly* ``probe_quota`` requests until the
  probes resolve; probes that never report back are treated as
  failures after a further cooldown (re-open, then retry), so lost
  probes cannot wedge the breaker either.
"""

__all__ = ["CircuitBreaker", "CircuitBreakerRegistry"]

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half_open"


class CircuitBreaker:
    """Failure-rate tripped breaker with probe-based recovery.

    Parameters
    ----------
    window:
        Sliding outcome window length (most recent calls).
    failure_threshold:
        Failure fraction over the window that trips the breaker.
    min_samples:
        Outcomes required before the rate is meaningful; a single
        failure on a cold breaker must not trip it.
    open_seconds:
        Cooldown while open; also the patience for outstanding
        half-open probes before they are presumed lost.
    probe_quota:
        Requests admitted while half-open.
    probe_successes:
        Successful probes required to close again.
    """

    __slots__ = (
        "window", "failure_threshold", "min_samples", "open_seconds",
        "probe_quota", "probe_successes", "state", "_outcomes",
        "_open_until", "_probes_issued", "_probe_ok", "_last_probe_at",
        "opens_total", "closes_total", "probes_total",
        "rejections_total",
    )

    def __init__(self, window=20, failure_threshold=0.5, min_samples=5,
                 open_seconds=30.0, probe_quota=2, probe_successes=2):
        if window < 1:
            raise ValueError("window must be >= 1")
        if not 0.0 < failure_threshold <= 1.0:
            raise ValueError("failure_threshold must be in (0, 1]")
        if min_samples < 1:
            raise ValueError("min_samples must be >= 1")
        if open_seconds <= 0:
            raise ValueError("open_seconds must be positive")
        if probe_quota < 1:
            raise ValueError("probe_quota must be >= 1")
        if not 1 <= probe_successes <= probe_quota:
            raise ValueError(
                "probe_successes must be in [1, probe_quota]"
            )
        self.window = int(window)
        self.failure_threshold = float(failure_threshold)
        self.min_samples = int(min_samples)
        self.open_seconds = float(open_seconds)
        self.probe_quota = int(probe_quota)
        self.probe_successes = int(probe_successes)
        self.state = CLOSED
        #: Recent outcomes, True = success, oldest first.
        self._outcomes = []
        self._open_until = 0.0
        self._probes_issued = 0
        self._probe_ok = 0
        self._last_probe_at = 0.0
        self.opens_total = 0
        self.closes_total = 0
        self.probes_total = 0
        self.rejections_total = 0

    def __repr__(self):
        return (
            f"<CircuitBreaker {self.state} "
            f"({len(self._outcomes)} outcomes)>"
        )

    # -- transitions -------------------------------------------------------

    def _trip(self, now):
        self.state = OPEN
        self._open_until = now + self.open_seconds
        self._outcomes = []
        self.opens_total += 1

    def _enter_half_open(self):
        self.state = HALF_OPEN
        self._probes_issued = 0
        self._probe_ok = 0

    def _close(self):
        self.state = CLOSED
        self._outcomes = []
        self.closes_total += 1

    # -- the public protocol -----------------------------------------------

    def allow(self, now):
        """May a request be sent to this replica at ``now``?

        Half-open admissions count against the probe quota; a caller
        that got True while half-open *is* a probe and must report its
        outcome.
        """
        if self.state == OPEN:
            if now < self._open_until:
                self.rejections_total += 1
                return False
            self._enter_half_open()
        if self.state == HALF_OPEN:
            if self._probes_issued < self.probe_quota:
                self._probes_issued += 1
                self.probes_total += 1
                self._last_probe_at = now
                return True
            if now - self._last_probe_at >= self.open_seconds:
                # Every probe slot was handed out and none reported
                # back within a cooldown: presume them lost and start a
                # fresh open window (probes will be re-issued after
                # it — the breaker cannot wedge).
                self._trip(now)
            self.rejections_total += 1
            return False
        return True

    def record_success(self, now):
        """A request to this replica completed."""
        if self.state == HALF_OPEN:
            self._probe_ok += 1
            if self._probe_ok >= self.probe_successes:
                self._close()
            return
        if self.state == OPEN:
            # Late result from before the trip; the open window stands.
            return
        self._push(True, now)

    def record_failure(self, now):
        """A request to this replica failed operationally."""
        if self.state == HALF_OPEN:
            self._trip(now)
            return
        if self.state == OPEN:
            return
        self._push(False, now)

    def _push(self, ok, now):
        self._outcomes.append(ok)
        if len(self._outcomes) > self.window:
            del self._outcomes[0]
        if len(self._outcomes) < self.min_samples:
            return
        failures = self._outcomes.count(False)
        if failures / len(self._outcomes) >= self.failure_threshold:
            self._trip(now)

    def retry_after(self, now):
        """Seconds until the open window lapses (None unless open)."""
        if self.state != OPEN or now >= self._open_until:
            return None
        return self._open_until - now


class CircuitBreakerRegistry:
    """One :class:`CircuitBreaker` per replica host.

    The registry reads the clock from the grid and emits breaker
    transitions to the observability layer; the per-host machines stay
    pure.  ``filter_allowed`` preserves candidate order, so selection
    rankings are unchanged apart from the exclusions.
    """

    def __init__(self, grid, **breaker_kwargs):
        self.grid = grid
        self._kwargs = dict(breaker_kwargs)
        self._breakers = {}

    def __repr__(self):
        return f"<CircuitBreakerRegistry {len(self._breakers)} hosts>"

    @property
    def _now(self):
        return self.grid.sim.now

    def breaker(self, host_name):
        breaker = self._breakers.get(host_name)
        if breaker is None:
            breaker = CircuitBreaker(**self._kwargs)
            self._breakers[host_name] = breaker
        return breaker

    def allow(self, host_name):
        return self.breaker(host_name).allow(self._now)

    def record_success(self, host_name):
        breaker = self.breaker(host_name)
        state = breaker.state
        breaker.record_success(self._now)
        self._note_transition(host_name, state, breaker.state)

    def record_failure(self, host_name):
        breaker = self.breaker(host_name)
        state = breaker.state
        breaker.record_failure(self._now)
        self._note_transition(host_name, state, breaker.state)

    def _note_transition(self, host_name, before, after):
        if before == after:
            return
        obs = self.grid.obs
        if obs.enabled:
            obs.metrics.counter(
                "frontdoor.breaker_transitions", state=after
            ).inc()
            obs.events.emit(
                "frontdoor.breaker", host=host_name,
                state=after, was=before,
            )

    def filter_allowed(self, host_names):
        """Hosts admitted right now, in the order given.

        Half-open hosts consume a probe slot when admitted — the
        caller's request to them is the probe.
        """
        now = self._now
        return [
            name for name in host_names
            if self.breaker(name).allow(now)
        ]

    def retry_after(self, host_names):
        """Shortest open window among ``host_names`` (None if unknown)."""
        now = self._now
        windows = [
            remaining for remaining in (
                self.breaker(name).retry_after(now)
                for name in host_names
            )
            if remaining is not None
        ]
        return min(windows) if windows else None

    def open_hosts(self):
        """Names of currently-open breakers, sorted."""
        now = self._now
        return sorted(
            name for name, breaker in self._breakers.items()
            if breaker.state == OPEN and now < breaker._open_until
        )

    @property
    def opens_total(self):
        return sum(b.opens_total for b in self._breakers.values())

    @property
    def rejections_total(self):
        return sum(
            b.rejections_total for b in self._breakers.values()
        )
