"""Multi-tenant control plane in front of replica selection.

The data plane (selection server + reliable transfer) answers "which
replica, and move the bytes".  This package is the control plane that
decides *whether and when* a request reaches it at all:

* :mod:`~repro.controlplane.tokenbucket` / ``admission`` — per-tenant
  and global token buckets; load shedding at the door;
* :mod:`~repro.controlplane.queueing` — bounded queue + worker pool
  (queue-based load leveling);
* :mod:`~repro.controlplane.breaker` — per-replica circuit breakers
  over a sliding failure window, layered on the integrity health
  registry;
* :mod:`~repro.controlplane.idempotency` — idempotency-keyed dedup so
  client retries never double-execute a transfer;
* :mod:`~repro.controlplane.frontdoor` — the composition, one
  :class:`FrontDoor` per testbed.

See docs/control_plane.md for the design discussion and the
``fig_frontdoor`` experiment for the measured effect.
"""

from repro.controlplane.admission import AdmissionController
from repro.controlplane.breaker import (
    CLOSED,
    HALF_OPEN,
    OPEN,
    CircuitBreaker,
    CircuitBreakerRegistry,
)
from repro.controlplane.frontdoor import (
    BreakerGuardedSelection,
    FrontDoor,
    FrontDoorConfig,
)
from repro.controlplane.idempotency import IdempotencyRegistry
from repro.controlplane.queueing import BoundedQueue
from repro.controlplane.tenants import (
    TenantSpec,
    TenantStats,
    jain_fairness,
    percentile,
)
from repro.controlplane.tokenbucket import TokenBucket

__all__ = [
    "AdmissionController",
    "BoundedQueue",
    "BreakerGuardedSelection",
    "CLOSED",
    "CircuitBreaker",
    "CircuitBreakerRegistry",
    "FrontDoor",
    "FrontDoorConfig",
    "HALF_OPEN",
    "IdempotencyRegistry",
    "OPEN",
    "TenantSpec",
    "TenantStats",
    "TokenBucket",
    "jain_fairness",
    "percentile",
]
