"""Idempotency keys: a retried request never double-executes.

Open-loop clients resubmit: an impatient user clicks again, a session
layer retries a request it believes lost.  Without dedup every
resubmission starts another full transfer — under overload exactly when
duplicates are most likely.  The registry gives every request an
idempotency key and three dispositions:

* ``new`` — first sighting; the caller executes the transfer and must
  report the outcome (:meth:`finish`) or withdraw (:meth:`abandon`);
* ``in-flight`` — the same key is already executing; the caller gets a
  kernel :class:`~repro.sim.events.Event` to wait on and receives the
  original's outcome when it lands — zero extra bytes moved;
* ``replay`` — the key already completed within the retention window;
  the recorded outcome is returned immediately.

Completed entries are retained for ``retention_seconds`` and evicted
lazily in completion order, bounded by ``max_entries`` so a sim-day of
requests cannot grow the table without limit.
"""

__all__ = ["IdempotencyRegistry"]


class _Entry:

    __slots__ = ("state", "waiters", "outcome", "completed_at")

    def __init__(self):
        self.state = "in_flight"
        self.waiters = []
        self.outcome = None
        self.completed_at = None


class IdempotencyRegistry:
    """Keyed request dedup over the simulation clock."""

    def __init__(self, sim, retention_seconds=3600.0, max_entries=65536):
        if retention_seconds <= 0:
            raise ValueError("retention_seconds must be positive")
        if max_entries < 1:
            raise ValueError("max_entries must be >= 1")
        self.sim = sim
        self.retention_seconds = float(retention_seconds)
        self.max_entries = int(max_entries)
        self._entries = {}
        #: Completed keys in completion order (the eviction queue).
        self._completed = []
        self._evict_from = 0
        self.new_total = 0
        self.joined_total = 0
        self.replayed_total = 0

    def __repr__(self):
        return (
            f"<IdempotencyRegistry {len(self._entries)} keys "
            f"({self.new_total} new, {self.joined_total} joined, "
            f"{self.replayed_total} replayed)>"
        )

    def __len__(self):
        return len(self._entries)

    def begin(self, key):
        """Register a sighting of ``key``.

        Returns ``("new", None)``, ``("in-flight", event)`` or
        ``("replay", outcome)``.
        """
        self._purge()
        entry = self._entries.get(key)
        if entry is None:
            self._entries[key] = _Entry()
            self.new_total += 1
            return "new", None
        if entry.state == "in_flight":
            event = self.sim.event()
            entry.waiters.append(event)
            self.joined_total += 1
            return "in-flight", event
        self.replayed_total += 1
        return "replay", entry.outcome

    def finish(self, key, outcome):
        """Record the outcome for ``key``; wakes every joined waiter."""
        entry = self._entries.get(key)
        if entry is None or entry.state != "in_flight":
            raise KeyError(f"no in-flight entry for key {key!r}")
        entry.state = "done"
        entry.outcome = outcome
        entry.completed_at = self.sim.now
        self._completed.append(key)
        waiters, entry.waiters = entry.waiters, []
        for event in waiters:
            event.succeed(outcome)

    def abandon(self, key):
        """Withdraw an in-flight key (the execution was shed).

        Waiters that already joined are woken with ``None`` so they can
        resubmit rather than hang on a request nobody is executing.
        """
        entry = self._entries.get(key)
        if entry is None or entry.state != "in_flight":
            return
        del self._entries[key]
        for event in entry.waiters:
            event.succeed(None)

    def _purge(self):
        """Evict completed entries past retention or over the cap."""
        now = self.sim.now
        horizon = now - self.retention_seconds
        while self._evict_from < len(self._completed):
            key = self._completed[self._evict_from]
            entry = self._entries.get(key)
            if entry is None or entry.state != "done":
                # Key was re-registered after completion; its slot in
                # the eviction queue is stale.
                self._evict_from += 1
                continue
            over_cap = len(self._entries) > self.max_entries
            if entry.completed_at <= horizon or over_cap:
                del self._entries[key]
                self._evict_from += 1
                continue
            break
        if self._evict_from > 4096:
            del self._completed[: self._evict_from]
            self._evict_from = 0
