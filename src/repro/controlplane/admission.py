"""Admission control: per-tenant and global token buckets.

Two layers of throttling guard the front door.  Each tenant's bucket
enforces its contracted rate — one tenant's flash crowd cannot starve
the others at the door.  The optional global bucket caps aggregate
admissions at what the grid can actually serve, so the queue behind
admission levels load instead of growing without bound.

Decisions are instantaneous (no sim events): a request is admitted or
shed at its arrival instant, which is what "load shedding" means —
refusing cheaply *now* beats queueing work that will time out anyway.
"""

from repro.controlplane.tokenbucket import TokenBucket

__all__ = ["AdmissionController"]


class AdmissionController:
    """Token-bucket admission over a set of tenants.

    Parameters
    ----------
    tenants:
        Iterable of :class:`~repro.controlplane.tenants.TenantSpec`.
    global_rate / global_burst:
        Aggregate admission envelope across all tenants (``None``
        disables the global bucket).
    """

    def __init__(self, tenants, global_rate=None, global_burst=None):
        self._buckets = {}
        for spec in tenants:
            if spec.name in self._buckets:
                raise ValueError(f"duplicate tenant {spec.name!r}")
            self._buckets[spec.name] = TokenBucket(
                spec.rate, spec.burst
            )
        if not self._buckets:
            raise ValueError("need at least one tenant")
        self._global = None
        if global_rate is not None:
            self._global = TokenBucket(global_rate, global_burst)
        self.admitted_total = 0
        self.shed_total = 0

    def __repr__(self):
        return (
            f"<AdmissionController {len(self._buckets)} tenants, "
            f"{self.admitted_total} admitted / {self.shed_total} shed>"
        )

    def admit(self, now, tenant_name):
        """Admit or shed one request; returns ``(admitted, reason)``.

        ``reason`` is ``None`` when admitted, else
        ``"tenant-throttle"`` / ``"global-throttle"``.  The tenant
        token is only spent when the global bucket also admits, so a
        globally-shed request does not burn tenant budget.
        """
        bucket = self._buckets.get(tenant_name)
        if bucket is None:
            raise KeyError(f"unknown tenant {tenant_name!r}")
        if bucket.level_at(now) < 1.0:
            bucket.rejected += 1
            self.shed_total += 1
            return False, "tenant-throttle"
        if self._global is not None and not self._global.try_acquire(now):
            self.shed_total += 1
            return False, "global-throttle"
        bucket.try_acquire(now)
        self.admitted_total += 1
        return True, None

    def bucket(self, tenant_name):
        """The tenant's bucket (diagnostics/tests)."""
        return self._buckets[tenant_name]
