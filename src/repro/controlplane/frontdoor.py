"""The front door: request serving around selection + reliable transfer.

Composition of the control-plane primitives into one request path::

    arrival -> admission (token buckets) -> idempotency (dedup/join)
            -> bounded queue -> worker pool -> breaker-guarded
               selection -> ReliableFileTransfer

Every stage is optional so the fig_frontdoor exhibit can compare policy
cells on the identical workload:

* ``workers=None`` executes transfers inline in the caller's process —
  unbounded concurrency, the "no queue" configuration;
* ``admission=False`` admits everything (no throttling);
* ``breakers=False`` uses the raw selection server.

The breaker integration rides the reliable-transfer seam: the
:class:`BreakerGuardedSelection` adapter filters breaker-open hosts
out of the candidate list *before* scoring and registers itself as the
transfer's ``fault_listener``, so every operational fault (timeout,
refused connection) feeds the breaker of the replica that caused it —
long before the integrity layer would notice anything.  Successes feed
back the same way, closing half-open breakers through probe traffic.
"""

from repro.controlplane.admission import AdmissionController
from repro.controlplane.breaker import CircuitBreakerRegistry
from repro.controlplane.idempotency import IdempotencyRegistry
from repro.controlplane.queueing import BoundedQueue
from repro.controlplane.tenants import TenantStats, jain_fairness
from repro.core.server import NoLiveReplicaError
from repro.gridftp import (
    BackoffPolicy,
    GridFtpClient,
    ReliableFileTransfer,
    TooManyAttemptsError,
)
from repro.units import megabytes

__all__ = [
    "BreakerGuardedSelection",
    "FrontDoor",
    "FrontDoorConfig",
]


class FrontDoorConfig:
    """Tuning knobs of one front door (see docs/control_plane.md)."""

    __slots__ = (
        "workers", "queue_capacity", "admission", "idempotency",
        "global_rate",
        "global_burst", "breakers", "breaker_window",
        "breaker_failure_threshold", "breaker_min_samples",
        "breaker_open_seconds", "breaker_probe_quota",
        "breaker_probe_successes", "idempotency_retention",
        "marker_interval_mb", "transfer_attempts", "attempt_timeout",
        "backoff",
    )

    def __init__(self, workers=32, queue_capacity=256, admission=True,
                 idempotency=True,
                 global_rate=None, global_burst=None, breakers=True,
                 breaker_window=16, breaker_failure_threshold=0.5,
                 breaker_min_samples=4, breaker_open_seconds=20.0,
                 breaker_probe_quota=2, breaker_probe_successes=1,
                 idempotency_retention=3600.0, marker_interval_mb=8,
                 transfer_attempts=6, attempt_timeout=20.0,
                 backoff=None):
        if workers is not None and workers < 1:
            raise ValueError("workers must be >= 1 (or None for inline)")
        self.workers = workers
        self.queue_capacity = int(queue_capacity)
        self.admission = bool(admission)
        self.idempotency = bool(idempotency)
        self.global_rate = global_rate
        self.global_burst = global_burst
        self.breakers = bool(breakers)
        self.breaker_window = int(breaker_window)
        self.breaker_failure_threshold = float(breaker_failure_threshold)
        self.breaker_min_samples = int(breaker_min_samples)
        self.breaker_open_seconds = float(breaker_open_seconds)
        self.breaker_probe_quota = int(breaker_probe_quota)
        self.breaker_probe_successes = int(breaker_probe_successes)
        self.idempotency_retention = float(idempotency_retention)
        self.marker_interval_mb = float(marker_interval_mb)
        self.transfer_attempts = int(transfer_attempts)
        self.attempt_timeout = attempt_timeout
        self.backoff = backoff or BackoffPolicy(
            base=1.0, multiplier=2.0, cap=15.0, jitter=0.25,
            max_total_wait=60.0,
        )


class _BreakerFaultListener:
    """Routes reliable-transfer fault reports into the breakers."""

    __slots__ = ("breakers",)

    def __init__(self, breakers):
        self.breakers = breakers

    def on_fault(self, host_name, kind):
        self.breakers.record_failure(host_name)

    def on_success(self, host_name):
        self.breakers.record_success(host_name)


class BreakerGuardedSelection:
    """Selection adapter that filters breaker-open replicas.

    Quacks like a :class:`~repro.core.server.ReplicaSelectionServer`
    for the reliable transfer layer (``select`` / ``catalog`` /
    ``health`` / ``fault_listener``): candidates whose breaker is open
    are dropped before scoring, half-open admissions become probe
    traffic, and when *every* replica's breaker is open the
    :class:`~repro.core.server.NoLiveReplicaError` carries the
    shortest open window as its ``retry_after`` hint.
    """

    def __init__(self, server, breakers):
        self._server = server
        self.breakers = breakers
        self.catalog = server.catalog
        self.health = server.health
        self.fault_listener = _BreakerFaultListener(breakers)

    def __repr__(self):
        return f"<BreakerGuardedSelection over {self._server!r}>"

    def select(self, client_name, logical_name):
        """Generator returning a breaker-filtered SelectionDecision."""
        entries = yield from self.catalog.query_locations(
            client_name, logical_name
        )
        names = [entry.host_name for entry in entries]
        allowed = self.breakers.filter_allowed(names)
        if not allowed:
            hints = [self.breakers.retry_after(names)]
            if self.health is not None:
                hints.append(self.health.retry_after(logical_name, names))
            known = [hint for hint in hints if hint is not None]
            raise NoLiveReplicaError(
                f"all {len(names)} replica hosts of {logical_name!r} "
                f"have open circuit breakers",
                retry_after=min(known) if known else None,
            )
        decision = yield from self._server.score_candidates(
            client_name, allowed, logical_name=logical_name
        )
        decision.logical_name = logical_name
        return decision


class _WorkItem:

    __slots__ = ("request", "done", "accepted_at")

    def __init__(self, request, done, accepted_at):
        self.request = request
        self.done = done
        self.accepted_at = accepted_at


class FrontDoor:
    """Multi-tenant request-serving facade over one testbed.

    Parameters
    ----------
    testbed:
        A built :class:`~repro.testbed.builder.Testbed`; the front door
        serves through its selection server.
    tenants:
        Iterable of :class:`~repro.controlplane.tenants.TenantSpec`.
    config:
        A :class:`FrontDoorConfig` (defaults used when None).

    Call :meth:`start` once, then drive requests through
    :meth:`handle` (a generator per request — spawn one process per
    arrival).
    """

    def __init__(self, testbed, tenants, config=None):
        self.testbed = testbed
        self.grid = testbed.grid
        self.config = config or FrontDoorConfig()
        self.tenants = {spec.name: spec for spec in tenants}
        if not self.tenants:
            raise ValueError("need at least one tenant")
        self.stats = {
            name: TenantStats(name) for name in self.tenants
        }
        sim = self.grid.sim
        self.admission = (
            AdmissionController(
                self.tenants.values(),
                global_rate=self.config.global_rate,
                global_burst=self.config.global_burst,
            )
            if self.config.admission else None
        )
        self.idempotency = (
            IdempotencyRegistry(
                sim, retention_seconds=self.config.idempotency_retention
            )
            if self.config.idempotency else None
        )
        self.breakers = (
            CircuitBreakerRegistry(
                self.grid,
                window=self.config.breaker_window,
                failure_threshold=self.config.breaker_failure_threshold,
                min_samples=self.config.breaker_min_samples,
                open_seconds=self.config.breaker_open_seconds,
                probe_quota=self.config.breaker_probe_quota,
                probe_successes=self.config.breaker_probe_successes,
            )
            if self.config.breakers else None
        )
        self.selection = (
            BreakerGuardedSelection(
                testbed.selection_server, self.breakers
            )
            if self.breakers is not None
            else testbed.selection_server
        )
        self.queue = (
            BoundedQueue(sim, self.config.queue_capacity)
            if self.config.workers is not None else None
        )
        self._workers = []
        self._local_seq = 0
        self.offered_total = 0

    def __repr__(self):
        mode = (
            f"{self.config.workers} workers"
            if self.queue is not None else "inline"
        )
        return (
            f"<FrontDoor {len(self.tenants)} tenants, {mode}, "
            f"{self.offered_total} offered>"
        )

    def start(self):
        """Spawn the worker pool (no-op in inline mode); returns self."""
        if self.queue is not None and not self._workers:
            sim = self.grid.sim
            for _ in range(self.config.workers):
                self._workers.append(sim.process(self._worker()))
        return self

    # -- the request path --------------------------------------------------

    def handle(self, request):
        """Generator: one request's full lifecycle; returns the outcome.

        ``request`` needs ``tenant``, ``client_name``, ``logical_name``
        and ``key`` attributes (see
        :class:`~repro.workloads.arrivals.ArrivalRequest`).
        """
        sim = self.grid.sim
        arrival = sim.now
        stats = self.stats.get(request.tenant)
        if stats is None:
            raise KeyError(f"unknown tenant {request.tenant!r}")
        stats.offered += 1
        self.offered_total += 1
        # Idempotency is consulted *before* admission: a replay or an
        # in-flight join consumes no downstream capacity, so it must
        # not pay (or be refused) rate-limit tokens a second time.
        disposition, payload = (
            self.idempotency.begin(request.key)
            if self.idempotency is not None else ("new", None)
        )
        if disposition == "replay":
            stats.dedup_replayed += 1
            if payload.get("status") == "ok":
                stats.dedup_served += 1
                stats.payload_bytes += payload.get("payload_bytes", 0.0)
            self._settle(request, "replay", None, sim.now - arrival)
            return dict(payload, replayed=True)
        if disposition == "in-flight":
            stats.dedup_joined += 1
            outcome = yield payload
            latency = sim.now - arrival
            if outcome is None:
                # The primary was shed from the queue after we joined.
                stats.shed_queue += 1
                self._settle(request, "shed", "queue-full", latency)
                return {"status": "shed", "reason": "queue-full"}
            stats.latencies.append(latency)
            if outcome.get("status") == "ok":
                stats.dedup_served += 1
                stats.payload_bytes += outcome.get("payload_bytes", 0.0)
            self._settle(request, "joined", None, latency)
            return dict(outcome, joined=True)
        if self.admission is not None:
            admitted, reason = self.admission.admit(
                sim.now, request.tenant
            )
            if not admitted:
                stats.shed_throttle += 1
                if self.idempotency is not None:
                    # Release the key synchronously (no yield since
                    # begin), so a later resubmission is "new" again
                    # rather than joining a primary that never ran.
                    self.idempotency.abandon(request.key)
                self._settle(request, "shed", reason, 0.0)
                return {"status": "shed", "reason": reason}
        stats.admitted += 1
        if self.queue is None:
            outcome = yield from self._execute(request)
        else:
            done = sim.event()
            item = _WorkItem(request, done, sim.now)
            if not self.queue.offer(item):
                stats.shed_queue += 1
                if self.idempotency is not None:
                    self.idempotency.abandon(request.key)
                self._settle(request, "shed", "queue-full", 0.0)
                return {"status": "shed", "reason": "queue-full"}
            outcome = yield done
        latency = sim.now - arrival
        stats.latencies.append(latency)
        if outcome["status"] == "ok":
            stats.completed += 1
            stats.payload_bytes += outcome["payload_bytes"]
        else:
            stats.failed += 1
        self._settle(request, outcome["status"], outcome.get("reason"),
                     latency)
        return outcome

    def _worker(self):
        while True:
            item = yield from self.queue.get()
            outcome = yield from self._execute(item.request)
            item.done.succeed(outcome)

    def _execute(self, request):
        """Run the transfer for one deduplicated request."""
        self._local_seq += 1
        local_name = f"frontdoor-{self._local_seq}"
        config = self.config
        rft = ReliableFileTransfer(
            GridFtpClient(self.grid, request.client_name),
            marker_interval_bytes=megabytes(config.marker_interval_mb),
            max_attempts=config.transfer_attempts,
            backoff=config.backoff,
            attempt_timeout=config.attempt_timeout,
        )
        try:
            result = yield from rft.get_logical(
                request.logical_name, self.selection,
                local_name=local_name,
            )
        except TooManyAttemptsError as error:
            outcome = {
                "status": "failed",
                "reason": type(error).__name__,
                "payload_bytes": 0.0,
            }
        else:
            outcome = {
                "status": "ok",
                "payload_bytes": result.payload_bytes,
                "transfer_seconds": result.elapsed,
                "faults": result.faults,
                "source": result.sources[-1] if result.sources else None,
            }
        fs = self.grid.host(request.client_name).filesystem
        for leftover in (local_name, f"{local_name}.chunk"):
            if leftover in fs:
                fs.delete(leftover)
        if self.idempotency is not None:
            self.idempotency.finish(request.key, outcome)
        return outcome

    def _settle(self, request, status, reason, latency):
        obs = self.grid.obs
        if not obs.enabled:
            return
        obs.metrics.counter(
            "frontdoor.requests", tenant=request.tenant, status=status
        ).inc()
        obs.metrics.histogram(
            "frontdoor.latency_seconds"
        ).observe(latency)
        obs.events.emit(
            "frontdoor.request", tenant=request.tenant,
            client=request.client_name,
            logical_name=request.logical_name, status=status,
            reason=reason, latency_seconds=latency,
        )

    # -- reporting ---------------------------------------------------------

    def fairness(self):
        """Jain's index over weight-normalised per-tenant service."""
        shares = [
            stats.service_ratio() / self.tenants[name].weight
            for name, stats in sorted(self.stats.items())
        ]
        return jain_fairness(shares)

    def summary(self):
        """Aggregate counters over every tenant (one dict)."""
        totals = {
            "offered": 0, "admitted": 0, "shed_throttle": 0,
            "shed_queue": 0, "completed": 0, "failed": 0,
            "dedup_joined": 0, "dedup_replayed": 0, "dedup_served": 0,
            "payload_bytes": 0.0,
        }
        latencies = []
        for name in sorted(self.stats):
            stats = self.stats[name]
            totals["offered"] += stats.offered
            totals["admitted"] += stats.admitted
            totals["shed_throttle"] += stats.shed_throttle
            totals["shed_queue"] += stats.shed_queue
            totals["completed"] += stats.completed
            totals["failed"] += stats.failed
            totals["dedup_joined"] += stats.dedup_joined
            totals["dedup_replayed"] += stats.dedup_replayed
            totals["dedup_served"] += stats.dedup_served
            totals["payload_bytes"] += stats.payload_bytes
            latencies.extend(stats.latencies)
        totals["latencies"] = latencies
        totals["fairness"] = self.fairness()
        totals["breaker_opens"] = (
            self.breakers.opens_total if self.breakers is not None else 0
        )
        totals["queue_high_water"] = (
            self.queue.high_water if self.queue is not None else 0
        )
        return totals
