"""Token buckets: the throttling primitive of the front door.

A token bucket admits sustained traffic at ``rate`` tokens/second with
bursts of up to ``burst`` tokens.  Refill is *lazy*: instead of an
event per token (which would swamp the event queue at millions of
requests per sim-day), the level is recomputed from the elapsed time on
every probe.  The bucket never touches the simulator — callers pass the
current sim time in — so throttling decisions are pure functions of
``(state, now)`` and can be unit-tested without a kernel.
"""

__all__ = ["TokenBucket"]


class TokenBucket:
    """Lazily-refilled token bucket.

    Parameters
    ----------
    rate:
        Sustained refill rate, tokens per second.
    burst:
        Bucket capacity — the largest burst admitted after an idle
        stretch.  Starts full.
    """

    __slots__ = ("rate", "burst", "_level", "_last", "admitted",
                 "rejected")

    def __init__(self, rate, burst=None):
        if rate <= 0:
            raise ValueError("rate must be positive")
        if burst is None:
            burst = rate
        if burst <= 0:
            raise ValueError("burst must be positive")
        self.rate = float(rate)
        self.burst = float(burst)
        self._level = float(burst)
        self._last = 0.0
        #: Tokens granted / probes refused (diagnostics).
        self.admitted = 0
        self.rejected = 0

    def __repr__(self):
        return (
            f"<TokenBucket rate={self.rate:g}/s burst={self.burst:g} "
            f"level={self._level:g}>"
        )

    def _refill(self, now):
        if now < self._last:
            raise ValueError(
                f"time went backwards: {now} < {self._last}"
            )
        self._level = min(
            self.burst, self._level + (now - self._last) * self.rate
        )
        self._last = now

    def level_at(self, now):
        """Tokens available at ``now`` (refills as a side effect)."""
        self._refill(now)
        return self._level

    def try_acquire(self, now, tokens=1.0):
        """Take ``tokens`` if available; returns True on success."""
        if tokens <= 0:
            raise ValueError("tokens must be positive")
        self._refill(now)
        if self._level >= tokens:
            self._level -= tokens
            self.admitted += 1
            return True
        self.rejected += 1
        return False

    def time_until(self, now, tokens=1.0):
        """Seconds until ``tokens`` would be available (0 if now)."""
        self._refill(now)
        if self._level >= tokens:
            return 0.0
        return (tokens - self._level) / self.rate
