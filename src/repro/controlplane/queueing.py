"""Queue-based load leveling: a bounded FIFO between door and workers.

Admission smooths the *rate*; the queue smooths the *burst shape*.  A
fixed pool of worker processes drains the queue, so transfer
concurrency is bounded no matter how fast admitted requests arrive —
the grid's fair-share links serve a few transfers at full speed instead
of thousands at a trickle.  When the queue is full the request is shed
at the door (cheap) rather than timed out deep in the data channel
(expensive).

FIFO for items *and* waiters: a worker that blocked first gets the
next item first, so scheduling is deterministic under same-seed
replay.
"""

__all__ = ["BoundedQueue"]


class BoundedQueue:
    """Bounded FIFO with process-blocking ``get``.

    ``offer`` never blocks (returns False when full — the caller
    sheds); ``get`` is a generator for worker processes that waits on a
    kernel event when the queue is empty.
    """

    def __init__(self, sim, capacity):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.sim = sim
        self.capacity = int(capacity)
        self._items = []
        self._take_from = 0
        self._waiters = []
        self._wait_from = 0
        self.offered_total = 0
        self.accepted_total = 0
        self.shed_total = 0
        self.high_water = 0

    def __repr__(self):
        return (
            f"<BoundedQueue {len(self)}/{self.capacity} "
            f"({len(self._waiters) - self._wait_from} idle workers)>"
        )

    def __len__(self):
        return len(self._items) - self._take_from

    def offer(self, item):
        """Enqueue ``item`` or hand it to an idle worker.

        Returns False (shed) when the queue is at capacity.
        """
        self.offered_total += 1
        while self._wait_from < len(self._waiters):
            event = self._waiters[self._wait_from]
            self._wait_from += 1
            if self._wait_from > 1024:
                del self._waiters[: self._wait_from]
                self._wait_from = 0
            if not event.triggered:
                event.succeed(item)
                self.accepted_total += 1
                return True
        if len(self) >= self.capacity:
            self.shed_total += 1
            return False
        self._items.append(item)
        self.accepted_total += 1
        depth = len(self)
        if depth > self.high_water:
            self.high_water = depth
        return True

    def get(self):
        """Generator: the next item, blocking while the queue is empty."""
        if self._take_from < len(self._items):
            item = self._items[self._take_from]
            self._items[self._take_from] = None
            self._take_from += 1
            if self._take_from > 1024:
                del self._items[: self._take_from]
                self._take_from = 0
            return item
        event = self.sim.event()
        self._waiters.append(event)
        item = yield event
        return item
