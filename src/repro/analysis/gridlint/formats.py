"""Output formatters for gridlint findings: text, json, github."""

from __future__ import annotations

import json

__all__ = ["FORMATS", "render"]


def _render_text(findings):
    lines = [str(f) for f in findings]
    total = len(findings)
    lines.append(
        "1 finding" if total == 1 else f"{total} findings"
    )
    return "\n".join(lines)


def _render_json(findings):
    return json.dumps([f.as_dict() for f in findings], indent=2)


def _render_github(findings):
    """GitHub Actions workflow commands — annotate the PR diff."""
    return "\n".join(
        f"::error file={f.path},line={f.line},col={f.col},"
        f"title={f.code}::{f.message}"
        for f in findings
    )


FORMATS = {
    "text": _render_text,
    "json": _render_json,
    "github": _render_github,
}


def render(findings, format="text"):
    """Render findings in the named format (text | json | github)."""
    try:
        formatter = FORMATS[format]
    except KeyError:
        raise ValueError(
            f"unknown format {format!r}; choose from {sorted(FORMATS)}"
        ) from None
    return formatter(findings)
