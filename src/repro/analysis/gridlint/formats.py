"""Output formatters for gridlint findings: text, json, github, sarif."""

from __future__ import annotations

import json

from repro.analysis.gridlint.rules import RULES

__all__ = ["FORMATS", "render"]

#: Tool metadata stamped into SARIF logs.
_SARIF_SCHEMA = (
    "https://docs.oasis-open.org/sarif/sarif/v2.1.0/errata01/os/schemas/"
    "sarif-schema-2.1.0.json"
)
_TOOL_URI = "https://example.invalid/repro/gridlint"
_TOOL_VERSION = "2.0.0"


def _render_text(findings):
    lines = [str(f) for f in findings]
    total = len(findings)
    lines.append(
        "1 finding" if total == 1 else f"{total} findings"
    )
    return "\n".join(lines)


def _render_json(findings):
    return json.dumps([f.as_dict() for f in findings], indent=2)


def _render_github(findings):
    """GitHub Actions workflow commands — annotate the PR diff."""
    return "\n".join(
        f"::error file={f.path},line={f.line},col={f.col},"
        f"title={f.code}::{f.message}"
        for f in findings
    )


def _render_sarif(findings):
    """SARIF 2.1.0 — the code-scanning interchange format.

    The full rule catalog is embedded so GitHub can render rule help
    even for codes with no findings this run.  gridlint columns are
    0-based; SARIF regions are 1-based, hence the ``col + 1``.
    """
    codes = sorted(RULES)
    index = {code: i for i, code in enumerate(codes)}
    rules = [
        {
            "id": code,
            "name": code,
            "shortDescription": {"text": RULES[code]},
            "defaultConfiguration": {"level": "error"},
        }
        for code in codes
    ]
    results = []
    for f in findings:
        uri = f.path.replace("\\", "/")
        if uri.startswith("./"):
            uri = uri[2:]
        result = {
            "ruleId": f.code,
            "level": "error",
            "message": {"text": f.message},
            "locations": [{
                "physicalLocation": {
                    "artifactLocation": {
                        "uri": uri,
                        "uriBaseId": "%SRCROOT%",
                    },
                    "region": {
                        "startLine": max(1, f.line),
                        "startColumn": f.col + 1,
                    },
                },
            }],
        }
        if f.code in index:
            result["ruleIndex"] = index[f.code]
        results.append(result)
    log = {
        "$schema": _SARIF_SCHEMA,
        "version": "2.1.0",
        "runs": [{
            "tool": {
                "driver": {
                    "name": "gridlint",
                    "informationUri": _TOOL_URI,
                    "version": _TOOL_VERSION,
                    "rules": rules,
                },
            },
            "columnKind": "utf16CodeUnits",
            "results": results,
        }],
    }
    return json.dumps(log, indent=2)


FORMATS = {
    "text": _render_text,
    "json": _render_json,
    "github": _render_github,
    "sarif": _render_sarif,
}


def render(findings, format="text"):
    """Render findings in the named format (text|json|github|sarif)."""
    try:
        formatter = FORMATS[format]
    except KeyError:
        raise ValueError(
            f"unknown format {format!r}; choose from {sorted(FORMATS)}"
        ) from None
    return formatter(findings)
