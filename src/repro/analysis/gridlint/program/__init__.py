"""Whole-program (interprocedural) analysis layer for gridlint.

The file-local rules (GL001-GL007, :mod:`repro.analysis.gridlint.rules`)
see one AST at a time; this package parses all of ``src/`` once into a
*project model* — module graph, symbol table and a heuristic call graph
— and runs rules that need to see across call boundaries:

* GL101 — determinism taint: wall-clock / ``random`` / environment
  reads propagated through assignments, returns and calls until they
  reach kernel scheduling, RNG seeding or trace output.
* GL102 — unit-dimension inference: seconds vs bytes vs bytes/s vs
  Mbps, seeded from ``repro.units.DIMENSIONS`` plus a parameter-name
  lexicon; flags dimension-mismatched call arguments and arithmetic.
* GL103 — timer-guard leak proofs: a ``guard_tag``-ed timer with no
  reachable ``cancel()`` path on any alias anywhere in the project.
* GL104 — fast-path parity: persistent state written under one
  ``REPRO_*`` fast-path toggle branch that the other branch never
  writes.
* GL105 — unthrottled retry loops: a ``for``/``while`` that
  (transitively) re-drives the raw data channel with no backoff,
  delay or attempt timeout per iteration; ``repro.gridftp`` itself is
  the sanctioned pacing layer and is exempt.

The model is extracted per module into JSON-serialisable
:class:`~repro.analysis.gridlint.program.model.ModuleInfo` facts, which
is what makes the incremental cache (``.gridlint-cache.json``) work:
unchanged modules load their facts instead of re-parsing, and program
findings are invalidated per module through the import graph.
"""

from repro.analysis.gridlint.program.driver import (
    ProgramRunStats,
    analyze_project,
)
from repro.analysis.gridlint.program.model import ModuleInfo, extract_module
from repro.analysis.gridlint.program.project import ProjectModel

__all__ = [
    "ModuleInfo",
    "ProgramRunStats",
    "ProjectModel",
    "analyze_project",
    "extract_module",
]
