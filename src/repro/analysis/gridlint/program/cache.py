"""Content-hash incremental cache (``.gridlint-cache.json``).

Per file the cache stores: the source's SHA-256, the file-local
findings (GL000-GL007, *before* pragma/baseline filtering), the
serialised pragma suppression table, the extracted
:class:`~repro.analysis.gridlint.program.model.ModuleInfo` facts, and
the program-rule findings partitioned by what can invalidate them:

* ``local``   — GL104 (depends on this module only; key: file hash);
* ``closure`` — GL101/GL102/GL105 (depend on everything the module
  transitively imports; key: digest over the import closure's hashes);
* ``global``  — GL103 (cancel paths may live in *importers*; key:
  digest over every file in the run).

Invalidation therefore flows through the import graph: editing a leaf
module re-parses one file but invalidates the closure-keyed findings
of every module that (transitively) imports it, while modules outside
that reverse-closure reuse their cached results untouched.

The cache is versioned; any schema or rule change bumps
:data:`CACHE_SCHEMA` and silently discards stale caches.  A corrupt or
unreadable cache degrades to a cold run, never to an error.
"""

from __future__ import annotations

import hashlib
import json
import os
from typing import Any

from repro.analysis.gridlint.program.model import MODEL_VERSION

__all__ = ["AnalysisCache", "CACHE_SCHEMA", "file_digest"]

#: Bump on any change to extraction, rules, or cache layout.
CACHE_SCHEMA = f"gridlint-cache/2+model{MODEL_VERSION}"


def file_digest(data: bytes) -> str:
    return hashlib.sha256(data).hexdigest()


def combine_digests(parts: list[str]) -> str:
    digest = hashlib.sha256()
    for part in parts:
        digest.update(part.encode())
        digest.update(b"\n")
    return digest.hexdigest()


class AnalysisCache:
    """Load/store per-file analysis results keyed by content hashes."""

    def __init__(self, path: str | None) -> None:
        self.path = path
        self.files: dict[str, dict[str, Any]] = {}
        self.dirty = False
        if path is not None and os.path.exists(path):
            try:
                with open(path, encoding="utf-8") as handle:
                    data = json.load(handle)
                if data.get("schema") == CACHE_SCHEMA:
                    self.files = data.get("files", {})
            except (OSError, ValueError):
                self.files = {}

    @property
    def enabled(self) -> bool:
        return self.path is not None

    def entry_for(self, path: str, digest: str) -> dict[str, Any] | None:
        """The cached entry for ``path`` if its content still matches."""
        entry = self.files.get(path)
        if entry is not None and entry.get("hash") == digest:
            return entry
        return None

    def store_parse(self, path: str, digest: str,
                    local: list[dict[str, Any]],
                    pragmas: dict[str, Any],
                    info: dict[str, Any] | None) -> dict[str, Any]:
        """Record a fresh parse; program parts start empty."""
        entry: dict[str, Any] = {
            "hash": digest, "local": local, "pragmas": pragmas,
            "info": info,
        }
        self.files[path] = entry
        self.dirty = True
        return entry

    def program_findings(self, entry: dict[str, Any], part: str,
                         key: str) -> list[dict[str, Any]] | None:
        """Cached program findings of one part, if the key matches."""
        stored = entry.get(f"program_{part}")
        if stored is not None and stored.get("key") == key:
            findings = stored.get("findings")
            if isinstance(findings, list):
                return findings
        return None

    def store_program(self, entry: dict[str, Any], part: str, key: str,
                      findings: list[dict[str, Any]]) -> None:
        entry[f"program_{part}"] = {"key": key, "findings": findings}
        self.dirty = True

    def prune(self, keep: set[str]) -> None:
        """Drop entries for files no longer part of the run."""
        stale = set(self.files) - keep
        for path in sorted(stale):
            del self.files[path]
            self.dirty = True

    def save(self) -> None:
        if self.path is None or not self.dirty:
            return
        payload = {"schema": CACHE_SCHEMA, "files": self.files}
        tmp = f"{self.path}.tmp"
        try:
            with open(tmp, "w", encoding="utf-8") as handle:
                json.dump(payload, handle, separators=(",", ":"))
            os.replace(tmp, self.path)
            self.dirty = False
        except OSError:
            try:
                os.remove(tmp)
            except OSError:
                pass
