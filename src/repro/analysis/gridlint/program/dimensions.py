"""GL102 — interprocedural unit-dimension inference.

The reproduction's numeric plumbing carries three families of
quantities — times (seconds), sizes (bytes) and rates (bytes/s) — plus
the paper-facing units (Mbps, MB) that :mod:`repro.units` converts at
the boundary.  A ``Mbps`` value handed to a ``bytes``-expecting
parameter, or ``seconds + bytes`` arithmetic, type-checks fine in
Python and silently skews every exhibit.

Dimensions are seeded from two places:

* ``repro.units.DIMENSIONS`` — authoritative annotations for the
  conversion helpers (their parameter and return dimensions);
* a parameter-name lexicon (:data:`LEXICON`) — ``delay``/``period``/
  ``*_s`` are seconds, ``nbytes``/``*_bytes`` are bytes,
  ``bandwidth``/``*_bytes_per_s`` are rates, ``*_mb`` is megabytes,
  ``*_mbps`` is Mbps, and so on.

Inference propagates through assignments, a small dimensional algebra
(``bytes / seconds -> bytes_per_s``, ``bytes / bytes_per_s ->
seconds``, ``rate * seconds -> bytes``), and function return summaries
iterated to a fixpoint.  Findings fire only when *both* sides of an
argument binding or a ``+``/``-`` are known and disagree — unknown
stays silent, so the rule is conservative by construction.
"""

from __future__ import annotations

from repro import units as units_module
from repro.analysis.gridlint.findings import Finding
from repro.analysis.gridlint.program.model import (
    Expr,
    FunctionInfo,
    ModuleInfo,
)
from repro.analysis.gridlint.program.project import ProjectModel

__all__ = ["LEXICON", "check_gl102", "dim_for_param"]

#: Exact parameter/variable names with a known dimension.
LEXICON: dict[str, str] = {
    "delay": "seconds", "timeout": "seconds", "period": "seconds",
    "interval": "seconds", "latency": "seconds", "duration": "seconds",
    "horizon": "seconds", "deadline": "seconds", "rtt": "seconds",
    "seconds": "seconds", "elapsed": "seconds",
    "nbytes": "bytes", "size_bytes": "bytes",
    "bandwidth": "bytes_per_s", "throughput": "bytes_per_s",
    "bytes_per_s": "bytes_per_s",
    "mbps": "mbps", "gbps": "gbps",
    "megabytes": "megabytes",
    "milliseconds": "milliseconds", "ms": "milliseconds",
}

#: Name suffixes with a known dimension (checked after exact names).
_SUFFIXES: tuple[tuple[str, str], ...] = (
    ("_seconds", "seconds"), ("_secs", "seconds"), ("_s", "seconds"),
    ("_ms", "milliseconds"),
    ("_bytes", "bytes"),
    ("_bytes_per_s", "bytes_per_s"),
    ("_mbps", "mbps"), ("_gbps", "gbps"),
    ("_mb", "megabytes"),
)

#: Dimension of ``left / right``.
_DIV: dict[tuple[str, str], str] = {
    ("bytes", "seconds"): "bytes_per_s",
    ("bytes", "bytes_per_s"): "seconds",
    ("megabytes", "seconds"): "mb_per_s",
}

#: Dimension of ``left * right`` (symmetric pairs listed once).
_MUL: dict[tuple[str, str], str] = {
    ("bytes_per_s", "seconds"): "bytes",
}


def dim_for_param(name: str) -> str | None:
    """Dimension implied by a parameter/variable name, if any."""
    exact = LEXICON.get(name)
    if exact is not None:
        return exact
    for suffix, dim in _SUFFIXES:
        if name.endswith(suffix) and len(name) > len(suffix):
            return dim
    return None


def _units_dims(tgt: str) -> tuple[tuple[str, ...], str] | None:
    """(param dims, return dim) when ``tgt`` is a repro.units helper."""
    prefix = "repro.units."
    if not tgt.startswith(prefix):
        return None
    return units_module.DIMENSIONS.get(tgt[len(prefix):])


def _is_byte_constant(name: str) -> bool:
    return (
        name.startswith("repro.units.")
        and name[len("repro.units."):] in units_module.BYTE_CONSTANTS
    )


class _DimensionPass:
    """Whole-program dimension inference and mismatch detection."""

    def __init__(self, model: ProjectModel) -> None:
        self.model = model
        #: function key -> inferred return dimension
        self.return_dims: dict[str, str] = {}

    # -- per-function environment ------------------------------------------

    def _env_for(self, info: ModuleInfo,
                 fn: FunctionInfo) -> dict[str, str]:
        env: dict[str, str] = {}
        for param in fn.params:
            dim = dim_for_param(param)
            if dim is not None:
                env[param] = dim
        for _round in range(4):
            changed = False
            for assign in fn.assigns:
                if assign["t"] in env:
                    continue
                dim = self._dim_of(assign["v"], env, info, fn)
                if dim is not None:
                    env[assign["t"]] = dim
                    changed = True
            if not changed:
                break
        return env

    def _dim_of(self, expr: Expr, env: dict[str, str],
                info: ModuleInfo, fn: FunctionInfo) -> str | None:
        kind = expr["k"]
        if kind == "const":
            return None  # literals are scalars; compatible with all
        if kind == "name":
            name = expr["id"]
            if name in env:
                return env[name]
            if _is_byte_constant(name):
                return "bytes"
            if name.endswith(".now") or name == "now":
                head = name.rsplit(".", 2)
                if len(head) >= 2 and head[-2].lstrip("_") in (
                    "sim", "simulator"
                ):
                    return "seconds"
            if name.startswith("self."):
                return dim_for_param(name[5:].lstrip("_"))
            return None
        if kind == "call":
            tgt = expr.get("tgt")
            if tgt is not None:
                annotated = _units_dims(tgt)
                if annotated is not None:
                    return annotated[1]
            callee = self.model.resolve_call(expr, info, fn)
            if callee is not None:
                return self.return_dims.get(callee)
            if expr.get("method") in ("min", "max"):
                return None
            if tgt in ("min", "max", "abs", "float", "sum"):
                dims = {
                    self._dim_of(a, env, info, fn)
                    for a in expr["args"]
                }
                dims.discard(None)
                if len(dims) == 1:
                    return dims.pop()
            return None
        if kind == "binop":
            return self._binop_dim(expr, env, info, fn)
        return None

    def _binop_dim(self, expr: Expr, env: dict[str, str],
                   info: ModuleInfo, fn: FunctionInfo) -> str | None:
        left = self._dim_of(expr["l"], env, info, fn)
        right = self._dim_of(expr["r"], env, info, fn)
        op = expr["op"]
        if op in ("+", "-", "%"):
            if left is not None and right is None:
                return left
            if right is not None and left is None:
                return right
            if left == right:
                return left
            return None
        if op in ("/", "//"):
            if left is not None and right is None:
                return left
            if left is not None and right is not None:
                if left == right:
                    return None  # ratio: a scalar
                return _DIV.get((left, right))
            return None
        if op == "*":
            if left is None:
                left, right = right, left
            if right is None:
                return left
            return _MUL.get((left, right)) or _MUL.get((right, left))
        return None

    # -- fixpoint over return summaries ------------------------------------

    def run(self) -> None:
        for _round in range(8):
            changed = False
            for name in sorted(self.model.modules):
                info = self.model.modules[name]
                for qualname in sorted(info.functions):
                    fn = info.functions[qualname]
                    key = f"{name}:{qualname}"
                    env = self._env_for(info, fn)
                    dims = {
                        self._dim_of(expr, env, info, fn)
                        for expr in fn.returns
                    }
                    dims.discard(None)
                    if len(dims) == 1:
                        dim = dims.pop()
                        if self.return_dims.get(key) != dim:
                            self.return_dims[key] = dim
                            changed = True
            if not changed:
                break

    # -- findings ----------------------------------------------------------

    def findings_for(self, info: ModuleInfo) -> list[Finding]:
        out: list[Finding] = []
        for qualname in sorted(info.functions):
            fn = info.functions[qualname]
            env = self._env_for(info, fn)
            for binop in fn.binops:
                left = self._dim_of(binop["l"], env, info, fn)
                right = self._dim_of(binop["r"], env, info, fn)
                if left is not None and right is not None \
                        and left != right:
                    out.append(Finding(
                        path=info.path, line=binop["line"],
                        col=binop["col"], code="GL102",
                        message=(
                            f"dimension mismatch: `{left} "
                            f"{binop['op']} {right}`; convert through "
                            "repro.units before mixing quantities"
                        ),
                    ))
            for call in fn.calls:
                out.extend(self._check_call(call, env, info, fn))
        return sorted(set(out))

    def _check_call(self, call: Expr, env: dict[str, str],
                    info: ModuleInfo, fn: FunctionInfo) -> list[Finding]:
        expected: list[tuple[str, str | None]] = []
        tgt = call.get("tgt")
        callee_params: list[str] | None = None
        if tgt is not None:
            annotated = _units_dims(tgt)
            if annotated is not None:
                helper = tgt.rsplit(".", 1)[-1]
                expected = [
                    (f"{helper}({dim})", dim) for dim in annotated[0]
                ]
        if not expected:
            callee = self.model.resolve_call(call, info, fn)
            callee_fn = (
                self.model.functions.get(callee) if callee else None
            )
            if callee_fn is None:
                return []
            callee_params = callee_fn.params
            expected = [
                (f"{callee_fn.qualname}({param}=...)",
                 dim_for_param(param))
                for param in callee_params
            ]
        out: list[Finding] = []
        bound: list[tuple[int, Expr]] = list(enumerate(call["args"]))
        if callee_params is not None:
            index_of = {n: i for i, n in enumerate(callee_params)}
            for name, value in call["kw"].items():
                if name in index_of:
                    bound.append((index_of[name], value))
        for index, arg in bound:
            if index >= len(expected):
                break
            label, want = expected[index]
            if want is None:
                continue
            have = self._dim_of(arg, env, info, fn)
            if have is not None and have != want:
                out.append(Finding(
                    path=info.path, line=call["line"],
                    col=call["col"], code="GL102",
                    message=(
                        f"argument has dimension `{have}` but "
                        f"`{label}` expects `{want}`; convert with "
                        "repro.units"
                    ),
                ))
        return out


def check_gl102(model: ProjectModel) -> dict[str, list[Finding]]:
    """Run unit-dimension inference; findings keyed by module name."""
    analysis = _DimensionPass(model)
    analysis.run()
    out: dict[str, list[Finding]] = {}
    for name in sorted(model.modules):
        found = analysis.findings_for(model.modules[name])
        if found:
            out[name] = found
    return out
