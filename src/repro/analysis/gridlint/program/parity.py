"""GL104 — fast-path branch parity.

The fast-path work (PR 7) put every optimisation behind a ``REPRO_*``
toggle with the invariant that both sides are *observably identical* —
the A/B digest sweep proves it dynamically.  The easiest way to break
that invariant while refactoring is to write persistent state
(``self.attr = ...``) under one branch of a toggle and forget the
other: the fast path then carries state the reference path never
initialises, and the divergence only shows up when a later code path
reads the attribute.

This rule inspects every ``if`` whose test reads a ``REPRO_*``
environment toggle (directly or through a variable bound from one) and
flags ``self.*`` attributes written under some arms but not all —
unless the same attribute is also assigned unconditionally in the same
function outside the toggle branch (the ``self.x = None`` +
``if fast: self.x = {}`` default-then-specialise pattern is fine).
"""

from __future__ import annotations

from repro.analysis.gridlint.findings import Finding
from repro.analysis.gridlint.program.model import (
    FunctionInfo,
    ModuleInfo,
)
from repro.analysis.gridlint.program.project import ProjectModel

__all__ = ["check_gl104"]


def _outside_writes(fn: FunctionInfo, start: int, end: int) -> set[str]:
    """``self.*`` targets assigned outside the [start, end] line span."""
    return {
        assign["t"] for assign in fn.assigns
        if assign["t"].startswith("self.")
        and not (start <= assign["line"] <= end)
    }


def _check_function(info: ModuleInfo,
                    fn: FunctionInfo) -> list[Finding]:
    out: list[Finding] = []
    for toggle in fn.toggles:
        arms: list[list[str]] = [list(arm) for arm in toggle["arms"]]
        if not toggle["else"]:
            arms.append([])  # the implicit empty else arm
        union: set[str] = set()
        for arm in arms:
            union.update(arm)
        if not union:
            continue
        unconditional = _outside_writes(
            fn, toggle["line"], toggle["end"]
        )
        for attr in sorted(union):
            missing = [arm for arm in arms if attr not in arm]
            if not missing or attr in unconditional:
                continue
            out.append(Finding(
                path=info.path, line=toggle["line"], col=0,
                code="GL104",
                message=(
                    f"`{attr}` is written under only one branch of "
                    f"the {toggle['env']} fast-path toggle; the other "
                    "branch never writes it, so the two paths carry "
                    "different state — initialise it unconditionally "
                    "or write it on every arm"
                ),
            ))
    return out


def check_gl104(model: ProjectModel) -> dict[str, list[Finding]]:
    """Check fast-path toggle branches for one-sided state writes."""
    out: dict[str, list[Finding]] = {}
    for name in sorted(model.modules):
        info = model.modules[name]
        found: list[Finding] = []
        for qualname in sorted(info.functions):
            found.extend(_check_function(info, info.functions[qualname]))
        if found:
            out[name] = sorted(set(found))
    return out
