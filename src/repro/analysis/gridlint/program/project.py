"""The project model: module graph, symbol table and call graph.

Built once per run from every module's :class:`ModuleInfo` facts.
Call resolution is heuristic by design — Python has no static types —
but three heuristics cover this codebase well:

* dotted targets resolved through each module's import aliases against
  the symbol table (module functions, classes, class methods);
* ``self.method()`` resolved against the enclosing class and its
  project-local bases (a best-effort MRO walk);
* *component attributes*: the reproduction wires a small, well-known
  set of singletons by attribute name (``self.sim`` is always the
  :class:`~repro.sim.kernel.Simulator`, ``self.grid`` the
  :class:`~repro.grid.DataGrid`, ...), so receiver names map to classes
  via :data:`COMPONENT_TYPES`; local variables get their type from
  ``x = ClassName(...)`` constructor assignments in the same function.
"""

from __future__ import annotations

from typing import Iterable

from repro.analysis.gridlint.program.model import (
    Expr,
    FunctionInfo,
    ModuleInfo,
)

__all__ = ["COMPONENT_TYPES", "ProjectModel"]

#: Well-known component attribute names -> the class they always hold.
#: Used to resolve ``self.sim.schedule(...)`` / ``grid.sim.timeout(...)``
#: style calls without type annotations.
COMPONENT_TYPES: dict[str, str] = {
    "sim": "repro.sim.kernel.Simulator",
    "simulator": "repro.sim.kernel.Simulator",
    "streams": "repro.sim.random_streams.StreamRegistry",
    "grid": "repro.grid.DataGrid",
    "obs": "repro.obs.core.Observability",
    "catalog": "repro.replica.catalog.ReplicaCatalog",
}


class ProjectModel:
    """All modules of one analysis run, cross-linked."""

    def __init__(self, modules: Iterable[ModuleInfo]) -> None:
        #: module name -> ModuleInfo
        self.modules: dict[str, ModuleInfo] = {}
        for info in modules:
            self.modules[info.module] = info
        #: global function key ("module:qualname") -> FunctionInfo
        self.functions: dict[str, FunctionInfo] = {}
        #: global class key ("module:Class") -> ModuleInfo (owner)
        self._class_owner: dict[str, str] = {}
        for name, info in self.modules.items():
            for qualname, fn in info.functions.items():
                self.functions[f"{name}:{qualname}"] = fn
            for cls in info.classes:
                self._class_owner[f"{name}.{cls}"] = name
        self._import_graph: dict[str, set[str]] | None = None
        self._closures: dict[str, frozenset[str]] = {}

    # -- module graph ------------------------------------------------------

    @property
    def import_graph(self) -> dict[str, set[str]]:
        """module -> project modules it imports (directly)."""
        if self._import_graph is None:
            graph: dict[str, set[str]] = {}
            for name, info in self.modules.items():
                deps: set[str] = set()
                candidates = list(info.imported_modules)
                candidates.extend(info.imports.values())
                for candidate in candidates:
                    dep = self._module_prefix(candidate)
                    if dep is not None and dep != name:
                        deps.add(dep)
                graph[name] = deps
            self._import_graph = graph
        return self._import_graph

    def _module_prefix(self, dotted: str) -> str | None:
        """Longest known module that is a dotted-prefix of ``dotted``."""
        parts = dotted.split(".")
        for end in range(len(parts), 0, -1):
            prefix = ".".join(parts[:end])
            if prefix in self.modules:
                return prefix
        return None

    def import_closure(self, module: str) -> frozenset[str]:
        """``module`` plus everything it transitively imports."""
        cached = self._closures.get(module)
        if cached is not None:
            return cached
        graph = self.import_graph
        seen: set[str] = set()
        stack = [module]
        while stack:
            current = stack.pop()
            if current in seen:
                continue
            seen.add(current)
            stack.extend(graph.get(current, ()))
        closure = frozenset(seen)
        self._closures[module] = closure
        return closure

    # -- symbol/class lookup -----------------------------------------------

    def class_info(self, class_key: str) -> tuple[ModuleInfo, str] | None:
        """(owning module, class name) for a dotted class key."""
        owner = self._class_owner.get(class_key)
        if owner is not None:
            return self.modules[owner], class_key.rsplit(".", 1)[-1]
        return None

    def method_on(self, class_key: str, method: str,
                  _depth: int = 0) -> str | None:
        """Function key of ``method`` on ``class_key`` or its bases."""
        if _depth > 8:
            return None
        found = self.class_info(class_key)
        if found is None:
            return None
        info, cls_name = found
        qualname = f"{cls_name}.{method}"
        if qualname in info.functions:
            return f"{info.module}:{qualname}"
        for base in info.classes[cls_name].bases:
            base_key = self._canonical_class(base, info)
            if base_key is not None:
                resolved = self.method_on(base_key, method, _depth + 1)
                if resolved is not None:
                    return resolved
        return None

    def _canonical_class(self, dotted: str,
                         context: ModuleInfo) -> str | None:
        """Resolve a (possibly bare) class reference to a class key."""
        if dotted in context.classes:
            return f"{context.module}.{dotted}"
        if dotted in self._class_owner:
            return dotted
        # Import alias already canonicalised at extraction; try the
        # last-resort prefix walk (``pkg.mod.Class``).
        owner = self._module_prefix(dotted)
        if owner is not None:
            remainder = dotted[len(owner) + 1:]
            if remainder in self.modules[owner].classes:
                return f"{owner}.{remainder}"
        return None

    # -- local type inference ----------------------------------------------

    def local_types(self, info: ModuleInfo,
                    fn: FunctionInfo) -> dict[str, str]:
        """name -> class key, from ``x = ClassName(...)`` assignments
        plus the component-attribute heuristics for parameters."""
        types: dict[str, str] = {}
        for param in fn.params:
            if param in COMPONENT_TYPES:
                types[param] = COMPONENT_TYPES[param]
        for name, class_key in COMPONENT_TYPES.items():
            types[f"self.{name}"] = class_key
            types[f"self._{name}"] = class_key
        for assign in fn.assigns:
            value = assign["v"]
            if value.get("k") != "call" or value.get("tgt") is None:
                continue
            class_key = self.constructor_class(value["tgt"], info)
            if class_key is not None:
                types[assign["t"]] = class_key
        return types

    def constructor_class(self, tgt: str,
                          context: ModuleInfo) -> str | None:
        """Class key if ``tgt`` names a project class (a constructor)."""
        return self._canonical_class(tgt, context)

    # -- call resolution ---------------------------------------------------

    def resolve_call(self, call: Expr, info: ModuleInfo,
                     fn: FunctionInfo,
                     local_types: dict[str, str] | None = None,
                     ) -> str | None:
        """Function key a call lands on, or None when unresolvable."""
        tgt = call.get("tgt")
        method = call.get("method")
        recv = call.get("recv")
        if tgt is not None:
            # self.method() -> enclosing class (and bases).
            if tgt.startswith("self.") and fn.cls is not None:
                remainder = tgt[len("self."):]
                if "." not in remainder:
                    return self.method_on(
                        f"{info.module}.{fn.cls}", remainder
                    )
            elif "." not in tgt:
                # Bare name: module-level function or local class.
                if tgt in info.functions:
                    return f"{info.module}:{tgt}"
                if tgt in info.classes:
                    return self.method_on(
                        f"{info.module}.{tgt}", "__init__"
                    )
            else:
                owner = self._module_prefix(tgt)
                if owner is not None:
                    remainder = tgt[len(owner) + 1:]
                    owned = self.modules[owner]
                    if remainder in owned.functions:
                        return f"{owner}:{remainder}"
                    head, _, rest = remainder.partition(".")
                    if head in owned.classes:
                        return self.method_on(
                            f"{owner}.{head}", rest or "__init__"
                        )
                class_key = self._canonical_class(tgt, info)
                if class_key is not None:
                    return self.method_on(class_key, "__init__")
        if method is not None and recv is not None:
            types = local_types if local_types is not None else (
                self.local_types(info, fn)
            )
            recv_type = types.get(recv)
            if recv_type is None:
                # Component heuristic on the attribute's last segment:
                # ``anything.sim.schedule`` is the Simulator's schedule.
                tail = recv.rsplit(".", 1)[-1].lstrip("_")
                recv_type = COMPONENT_TYPES.get(tail)
            if recv_type is not None:
                return self.method_on(recv_type, method)
        return None

    def receiver_class(self, call: Expr, info: ModuleInfo,
                       fn: FunctionInfo,
                       local_types: dict[str, str] | None = None,
                       ) -> str | None:
        """Class key of a method call's receiver, when inferable."""
        recv = call.get("recv")
        if recv is None:
            return None
        types = local_types if local_types is not None else (
            self.local_types(info, fn)
        )
        recv_type = types.get(recv)
        if recv_type is not None:
            return recv_type
        tail = recv.rsplit(".", 1)[-1].lstrip("_")
        return COMPONENT_TYPES.get(tail)
