"""GL101 — interprocedural determinism taint.

Sources of nondeterminism: wall-clock reads, the ``random`` module
(outside the sanctioned ``repro.sim.random_streams``), and environment
reads.  The analysis propagates taint through assignments, returns and
calls using per-function summaries iterated to a fixpoint, and reports
a finding when a tainted value reaches a *sink*: kernel scheduling
(``Simulator.schedule`` / ``timeout`` / ``Timeout``), RNG seeding
(``Simulator``/``StreamRegistry`` construction, stream naming) or trace
output (``obs.events.emit``).

Taint values are *origin sets*: the marker ``"src"`` (a source reached
this value) plus integer parameter indices (this value depends on that
parameter).  A function summary is then::

    returns:  origin set of its return expressions
    to_sink:  param index -> sink description (the param reaches a sink
              inside the function, possibly through further calls)

which lets a caller report ``f(tainted)`` at the call site even when
the actual ``schedule()`` is two calls deeper.
"""

from __future__ import annotations

from typing import Iterator

from repro.analysis.gridlint.findings import Finding
from repro.analysis.gridlint.program.model import (
    ENV_READ_TARGETS,
    Expr,
    FunctionInfo,
    ModuleInfo,
    _expr_children,
)
from repro.analysis.gridlint.program.project import ProjectModel
from repro.analysis.gridlint.rules import _WALL_CLOCK

__all__ = ["check_gl101"]

#: Modules whose use of `random` is sanctioned and deterministic
#: (seed-derived): their draws are NOT taint sources.
_RNG_MODULES = {"repro.sim.random_streams"}

#: The origin marker for "an actual nondeterminism source".
_SRC = -1

Origins = frozenset[int]
_EMPTY: Origins = frozenset()
_TAINTED: Origins = frozenset((_SRC,))


def _is_source(call: Expr, module: str) -> str | None:
    """Source description if this call reads nondeterministic state."""
    tgt = call.get("tgt")
    if tgt is None:
        return None
    if tgt in _WALL_CLOCK:
        return f"wall clock ({tgt})"
    if (tgt == "random" or tgt.startswith("random.")) \
            and module not in _RNG_MODULES:
        return f"unseeded RNG ({tgt})"
    if tgt in ENV_READ_TARGETS:
        return "environment read"
    return None


def _env_subscript(expr: Expr) -> bool:
    return (
        expr["k"] == "sub"
        and expr["base"].get("k") == "name"
        and expr["base"].get("id") == "os.environ"
    )


def _sink_of(call: Expr, model: ProjectModel, info: ModuleInfo,
             fn: FunctionInfo, types: dict[str, str]) -> str | None:
    """Sink description if this call schedules / seeds / traces."""
    method = call.get("method")
    tgt = call.get("tgt")
    if method in ("schedule", "timeout"):
        recv_class = model.receiver_class(call, info, fn, types)
        recv = call.get("recv") or ""
        tail = recv.rsplit(".", 1)[-1].lstrip("_")
        if recv_class == "repro.sim.kernel.Simulator" or \
                tail in ("sim", "simulator"):
            return f"kernel scheduling (Simulator.{method})"
        return None
    if method == "get":
        recv = call.get("recv") or ""
        recv_class = model.receiver_class(call, info, fn, types)
        if recv_class == "repro.sim.random_streams.StreamRegistry" or \
                recv.rsplit(".", 1)[-1] == "streams":
            return "seeded stream naming (streams.get)"
        return None
    if method == "emit":
        recv = call.get("recv") or ""
        if recv == "events" or recv.endswith(".events"):
            return "trace output (obs.events.emit)"
        return None
    if tgt is not None:
        class_key = model.constructor_class(tgt, info)
        if class_key == "repro.sim.kernel.Simulator":
            return "RNG seeding (Simulator construction)"
        if class_key == "repro.sim.random_streams.StreamRegistry":
            return "RNG seeding (StreamRegistry construction)"
        if class_key == "repro.sim.events.Timeout":
            return "kernel scheduling (Timeout construction)"
    return None


class _TaintPass:
    """One whole-program taint fixpoint plus finding generation."""

    def __init__(self, model: ProjectModel) -> None:
        self.model = model
        #: function key -> origin set of its returns
        self.returns: dict[str, Origins] = {}
        #: function key -> {param index: sink description}
        self.to_sink: dict[str, dict[int, str]] = {}
        #: tainted class attributes: "module.Class.attr"
        self.attr_taint: set[str] = set()
        self._types: dict[int, dict[str, str]] = {}

    # -- shared helpers ----------------------------------------------------

    def _fn_key(self, info: ModuleInfo, fn: FunctionInfo) -> str:
        return f"{info.module}:{fn.qualname}"

    def _local_types(self, info: ModuleInfo,
                     fn: FunctionInfo) -> dict[str, str]:
        key = id(fn)
        types = self._types.get(key)
        if types is None:
            types = self.model.local_types(info, fn)
            self._types[key] = types
        return types

    def _functions(self) -> Iterator[tuple[ModuleInfo, FunctionInfo]]:
        for name in sorted(self.model.modules):
            info = self.model.modules[name]
            for qualname in sorted(info.functions):
                yield info, info.functions[qualname]

    # -- taint evaluation --------------------------------------------------

    def _env_for(self, info: ModuleInfo,
                 fn: FunctionInfo) -> dict[str, Origins]:
        """Variable origin sets from the function's assignments."""
        env: dict[str, Origins] = {
            param: frozenset((index,))
            for index, param in enumerate(fn.params)
        }
        for _round in range(4):
            changed = False
            for assign in fn.assigns:
                origins = self._origins(assign["v"], env, info, fn)
                if origins - env.get(assign["t"], _EMPTY):
                    env[assign["t"]] = env.get(
                        assign["t"], _EMPTY
                    ) | origins
                    changed = True
            if not changed:
                break
        return env

    def _origins(self, expr: Expr, env: dict[str, Origins],
                 info: ModuleInfo, fn: FunctionInfo) -> Origins:
        kind = expr["k"]
        if kind == "const":
            return _EMPTY
        if kind == "name":
            name = expr["id"]
            found = env.get(name, _EMPTY)
            if name.startswith("self.") and fn.cls is not None:
                attr_key = f"{info.module}.{fn.cls}.{name[5:]}"
                if attr_key in self.attr_taint:
                    found = found | _TAINTED
            return found
        if kind == "call":
            return self._call_origins(expr, env, info, fn)
        if kind == "sub" and _env_subscript(expr):
            return _TAINTED
        out: Origins = _EMPTY
        for child in _expr_children(expr):
            out = out | self._origins(child, env, info, fn)
        return out

    def _call_origins(self, call: Expr, env: dict[str, Origins],
                      info: ModuleInfo, fn: FunctionInfo) -> Origins:
        if _is_source(call, info.module) is not None:
            return _TAINTED
        arg_origins: Origins = _EMPTY
        for child in list(call["args"]) + list(call["kw"].values()):
            arg_origins = arg_origins | self._origins(
                child, env, info, fn
            )
        callee = self.model.resolve_call(
            call, info, fn, self._local_types(info, fn)
        )
        if callee is None:
            # Unknown call: taint flows through, none is created.
            return arg_origins
        summary = self.returns.get(callee, _EMPTY)
        out: Origins = frozenset(o for o in summary if o == _SRC)
        callee_fn = self.model.functions.get(callee)
        if callee_fn is not None:
            for index, param in self._call_bindings(call, callee_fn):
                if index in summary:
                    out = out | self._origins(param, env, info, fn)
        return out

    def _call_bindings(self, call: Expr, callee: FunctionInfo,
                       ) -> list[tuple[int, Expr]]:
        """(callee param index, argument expression) pairs."""
        bound = list(enumerate(call["args"]))
        index_of = {name: i for i, name in enumerate(callee.params)}
        for name, value in call["kw"].items():
            if name in index_of:
                bound.append((index_of[name], value))
        return bound

    # -- fixpoint ----------------------------------------------------------

    def run(self) -> None:
        for _round in range(12):
            changed = False
            for info, fn in self._functions():
                changed |= self._summarise(info, fn)
            if not changed:
                break

    def _summarise(self, info: ModuleInfo, fn: FunctionInfo) -> bool:
        key = self._fn_key(info, fn)
        env = self._env_for(info, fn)
        returns: Origins = _EMPTY
        for expr in fn.returns:
            returns = returns | self._origins(expr, env, info, fn)
        to_sink = dict(self.to_sink.get(key, {}))
        types = self._local_types(info, fn)
        for call in fn.calls:
            sink = _sink_of(call, self.model, info, fn, types)
            callee = self.model.resolve_call(call, info, fn, types)
            callee_fn = (
                self.model.functions.get(callee)
                if callee is not None else None
            )
            callee_sinks = (
                self.to_sink.get(callee, {}) if callee else {}
            )
            for arg in list(call["args"]) + list(call["kw"].values()):
                origins = self._origins(arg, env, info, fn)
                for origin in origins:
                    if origin == _SRC:
                        continue
                    if sink is not None:
                        to_sink.setdefault(origin, sink)
                if callee_fn is not None:
                    for index, bound in self._call_bindings(
                        call, callee_fn
                    ):
                        if bound is not arg or index not in callee_sinks:
                            continue
                        for origin in origins:
                            if origin != _SRC:
                                to_sink.setdefault(
                                    origin, callee_sinks[index]
                                )
        changed = False
        if returns - self.returns.get(key, _EMPTY):
            self.returns[key] = returns | self.returns.get(key, _EMPTY)
            changed = True
        if to_sink != self.to_sink.get(key, {}):
            self.to_sink[key] = to_sink
            changed = True
        # Class-attribute taint: tainted value stored on self.
        if fn.cls is not None:
            for assign in fn.assigns:
                target = assign["t"]
                if not target.startswith("self."):
                    continue
                origins = self._origins(assign["v"], env, info, fn)
                if _SRC in origins:
                    attr_key = f"{info.module}.{fn.cls}.{target[5:]}"
                    if attr_key not in self.attr_taint:
                        self.attr_taint.add(attr_key)
                        changed = True
        return changed

    # -- findings ----------------------------------------------------------

    def findings_for(self, info: ModuleInfo) -> list[Finding]:
        out: list[Finding] = []
        for qualname in sorted(info.functions):
            fn = info.functions[qualname]
            env = self._env_for(info, fn)
            types = self._local_types(info, fn)
            for call in fn.calls:
                sink = _sink_of(call, self.model, info, fn, types)
                if sink is not None:
                    for arg in (list(call["args"])
                                + list(call["kw"].values())):
                        origins = self._origins(arg, env, info, fn)
                        if _SRC in origins:
                            out.append(self._finding(
                                info, call,
                                "nondeterministic value (wall-clock/"
                                f"random/env read) reaches {sink}; "
                                "derive it from Simulator.now or a "
                                "seeded stream instead",
                            ))
                            break
                    continue
                callee = self.model.resolve_call(call, info, fn, types)
                if callee is None:
                    continue
                callee_fn = self.model.functions.get(callee)
                callee_sinks = self.to_sink.get(callee, {})
                if callee_fn is None or not callee_sinks:
                    continue
                for index, arg in self._call_bindings(call, callee_fn):
                    if index not in callee_sinks:
                        continue
                    origins = self._origins(arg, env, info, fn)
                    if _SRC in origins:
                        param = (
                            callee_fn.params[index]
                            if index < len(callee_fn.params)
                            else f"#{index}"
                        )
                        out.append(self._finding(
                            info, call,
                            "nondeterministic value flows into "
                            f"`{callee_fn.qualname}({param}=...)`, "
                            f"which reaches {callee_sinks[index]}",
                        ))
        return out

    def _finding(self, info: ModuleInfo, call: Expr,
                 message: str) -> Finding:
        return Finding(
            path=info.path, line=call["line"], col=call["col"],
            code="GL101", message=message,
        )


def check_gl101(model: ProjectModel) -> dict[str, list[Finding]]:
    """Run the taint analysis; findings keyed by module name."""
    analysis = _TaintPass(model)
    analysis.run()
    out: dict[str, list[Finding]] = {}
    for name in sorted(model.modules):
        found = analysis.findings_for(model.modules[name])
        if found:
            out[name] = sorted(set(found))
    return out
