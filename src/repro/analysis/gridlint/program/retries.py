"""GL105 — unthrottled retry loops against the data channel.

The transfer stack's whole robustness story rests on *paced* retries:
:class:`~repro.gridftp.backoff.BackoffPolicy` spaces attempts out,
attempt timeouts bound how long each one can hold a connection, and
circuit breakers stop the loop reaching a dead replica at all.  A
``while``/``for`` loop that re-drives the data channel with none of
those is a retry storm waiting for its first brownout: every failed
attempt immediately adds another transfer to the very resource that is
failing, which is how grey failures become congestion collapse.

The rule is interprocedural on the *reaching* side: a loop is charged
with touching the data channel when any call issued per iteration
either names ``repro.gridftp.datachannel`` directly or resolves
(through the project call graph, transitively) to a function that
does.  Reachability propagation stops at ``repro.gridftp`` itself —
that layer is the sanctioned implementation (same carve-out GL007
gives it), already polices its own pacing, and absorbs the obligation
for everyone who goes through :class:`ReliableFileTransfer` /
:class:`GridFtpClient` instead of the raw channel.

A charged loop is excused when some per-iteration call shows
mitigation:

* a delay primitive — ``.timeout(...)`` / ``.delay(...)`` /
  ``.raw_delay(...)`` / ``.sleep(...)``;
* anything routed through a backoff object (``backoff`` in the call
  target or receiver);
* an attempt bound passed by keyword (``timeout=`` /
  ``attempt_timeout=`` / ``backoff=``);
* an :class:`InterruptGuard` arming the attempt with a deadline.
"""

from __future__ import annotations

from repro.analysis.gridlint.findings import Finding
from repro.analysis.gridlint.program.model import Expr
from repro.analysis.gridlint.program.project import ProjectModel

__all__ = ["check_gl105"]

#: The raw transfer module every charged loop ultimately reaches.
_CHANNEL = "repro.gridftp.datachannel"

#: Modules exempt from the rule and opaque to reachability: the
#: sanctioned transfer layer (GL007 precedent).
_EXEMPT_PREFIX = "repro.gridftp"

#: Method names that pace a loop iteration.
_DELAY_METHODS = {"timeout", "delay", "raw_delay", "sleep"}

#: Keyword arguments that bound an attempt.
_BOUNDING_KW = {"timeout", "attempt_timeout", "backoff"}


def _is_exempt(module: str) -> bool:
    return module == _EXEMPT_PREFIX or module.startswith(
        _EXEMPT_PREFIX + "."
    )


def _hits_channel(call: Expr) -> bool:
    """The call names the data-channel module directly."""
    tgt = call.get("tgt")
    return bool(
        tgt is not None
        and (tgt == _CHANNEL or tgt.startswith(_CHANNEL + "."))
    )


def _mitigates(call: Expr) -> bool:
    """The call paces or bounds the iteration it sits in."""
    if call.get("method") in _DELAY_METHODS:
        return True
    for name in (call.get("tgt"), call.get("recv")):
        if name is not None and "backoff" in name.lower():
            return True
    if _BOUNDING_KW & set(call.get("kw", ())):
        return True
    tgt = call.get("tgt")
    if tgt is not None and tgt.rsplit(".", 1)[-1] == "InterruptGuard":
        return True
    return False


class _RetryPass:
    """Channel-reachability over the call graph, memoised per function."""

    def __init__(self, model: ProjectModel) -> None:
        self.model = model
        #: function key -> does calling it (transitively) reach the
        #: raw data channel outside the exempt layer?
        self._reaching: dict[str, bool] = {}

    def _reaches(self, key: str, stack: frozenset[str]) -> bool:
        cached = self._reaching.get(key)
        if cached is not None:
            return cached
        if key in stack:
            return False  # cycle: the initiator settles the answer
        module = key.split(":", 1)[0]
        if _is_exempt(module):
            self._reaching[key] = False
            return False
        fn = self.model.functions.get(key)
        info = self.model.modules.get(module)
        if fn is None or info is None:
            self._reaching[key] = False
            return False
        result = False
        types = self.model.local_types(info, fn)
        for call in fn.calls:
            if _hits_channel(call):
                result = True
                break
            callee = self.model.resolve_call(call, info, fn, types)
            if callee is not None and self._reaches(
                callee, stack | {key}
            ):
                result = True
                break
        self._reaching[key] = result
        return result

    def _charged_call(self, call: Expr, info, fn, types) -> str | None:
        """Label of the channel-reaching call, or None."""
        if _hits_channel(call):
            return call.get("tgt")
        callee = self.model.resolve_call(call, info, fn, types)
        if callee is not None and self._reaches(callee, frozenset()):
            return call.get("tgt") or call.get("method") or callee
        return None

    def findings_for(self, info) -> list[Finding]:
        if _is_exempt(info.module):
            return []
        out: list[Finding] = []
        for qualname in sorted(info.functions):
            fn = info.functions[qualname]
            for loop in fn.loops:
                calls = loop["calls"]
                if any(_mitigates(call) for call in calls):
                    continue
                types = self.model.local_types(info, fn)
                charged = None
                for call in calls:
                    charged = self._charged_call(call, info, fn, types)
                    if charged is not None:
                        break
                if charged is None:
                    continue
                out.append(Finding(
                    path=info.path, line=loop["line"], col=0,
                    code="GL105",
                    message=(
                        f"loop re-drives the data channel (via "
                        f"`{charged}`) with no backoff, delay or "
                        "attempt timeout per iteration — a tight "
                        "retry turns one failing replica into a "
                        "retry storm; pace it with BackoffPolicy + "
                        "sim.timeout or bound each attempt"
                    ),
                ))
        return sorted(set(out))


def check_gl105(model: ProjectModel) -> dict[str, list[Finding]]:
    """Flag unpaced channel-reaching loops; findings keyed by module."""
    analysis = _RetryPass(model)
    out: dict[str, list[Finding]] = {}
    for name in sorted(model.modules):
        found = analysis.findings_for(model.modules[name])
        if found:
            out[name] = found
    return out
