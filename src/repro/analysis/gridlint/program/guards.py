"""GL103 — timer-guard leak proofs.

Every guard timer in the codebase follows the convention from the
chaos/fault layers: the armed handle gets a ``guard_tag`` so the
runtime leak sweep (:func:`repro.analysis.sanitizers.check_leaks`) can
attribute it.  The static obligation this rule proves: *somewhere in
the project there must be a reachable ``cancel()`` path for that
handle* — otherwise an abandoned component holds the event queue open
and the guard only surfaces at runtime, if a test happens to sweep.

The proof follows the handle through its aliases:

* direct — ``timer.cancel()`` on the same local name, or
  ``self._timer.cancel()`` in *any* method of the owning class;
* stores — ``self.attr = timer`` moves the obligation to the
  attribute; ``container.append(timer)`` moves it to the container,
  discharged by a loop over the container whose loop variable is
  cancelled (the chaos engine's ``stop()`` pattern);
* escapes — a handle *returned* from a helper moves the obligation to
  every caller that binds the result (one level of indirection, the
  ``self._timer(delay, tag)`` helper pattern).

A handle with no cancel path on any alias is reported at the arming
line.  This is an existence proof over the whole program, not a
per-branch reachability proof — a cancel in *some* method counts.
"""

from __future__ import annotations

from repro.analysis.gridlint.findings import Finding
from repro.analysis.gridlint.program.model import (
    Expr,
    FunctionInfo,
    ModuleInfo,
)
from repro.analysis.gridlint.program.project import ProjectModel

__all__ = ["check_gl103"]


def _iterates(value: Expr, container: str) -> bool:
    """True when an encoded for-target value draws from ``container``."""
    if value.get("k") == "name":
        return bool(value.get("id") == container)
    if value.get("k") == "call":
        return any(
            _iterates(child, container)
            for child in list(value["args"]) + list(value["kw"].values())
        )
    if value.get("k") == "other":
        return any(
            _iterates(child, container)
            for child in value["sub"] if child is not None
        )
    return False


class _GuardPass:

    def __init__(self, model: ProjectModel) -> None:
        self.model = model
        #: function key -> set of caller (module, FunctionInfo, binding
        #: names) — computed lazily for escape proofs.
        self._callers: dict[str, list[tuple[ModuleInfo, FunctionInfo,
                                            set[str]]]] | None = None

    # -- alias discovery inside one function -------------------------------

    def _aliases_of(self, fn: FunctionInfo, handle: str) -> set[str]:
        """Names the handle flows into inside ``fn`` (incl. itself)."""
        aliases = {handle}
        for _round in range(3):
            grew = False
            for assign in fn.assigns:
                value = assign["v"]
                if value.get("k") == "name" and value["id"] in aliases:
                    if assign["t"] not in aliases:
                        aliases.add(assign["t"])
                        grew = True
            if not grew:
                break
        return aliases

    def _containers_of(self, fn: FunctionInfo,
                       aliases: set[str]) -> set[str]:
        return {
            append["container"] for append in fn.appends
            if append["value"] in aliases
        }

    # -- cancel proofs -----------------------------------------------------

    def _cancelled_locally(self, fn: FunctionInfo,
                           aliases: set[str]) -> bool:
        return any(receiver in aliases for receiver in fn.cancels)

    def _class_methods(self, info: ModuleInfo,
                       cls: str) -> list[FunctionInfo]:
        return [
            fn for fn in info.functions.values() if fn.cls == cls
        ]

    def _class_cancels(self, info: ModuleInfo, cls: str,
                       attrs: set[str]) -> bool:
        """Some method cancels one of the ``self.*`` attrs directly."""
        for method in self._class_methods(info, cls):
            if any(receiver in attrs for receiver in method.cancels):
                return True
        return False

    def _container_cancels(self, info: ModuleInfo, cls: str | None,
                           containers: set[str]) -> bool:
        """Some method loops a container and cancels the loop var."""
        candidates = (
            self._class_methods(info, cls) if cls is not None
            else list(info.functions.values())
        )
        for method in candidates:
            cancelled = set(method.cancels)
            if not cancelled:
                continue
            for assign in method.assigns:
                if assign["t"] not in cancelled:
                    continue
                for container in containers:
                    if _iterates(assign["v"], container):
                        return True
        return False

    # -- escape-to-caller proofs -------------------------------------------

    def _caller_index(self) -> dict[str, list[tuple[ModuleInfo,
                                                    FunctionInfo,
                                                    set[str]]]]:
        if self._callers is not None:
            return self._callers
        index: dict[str, list[tuple[ModuleInfo, FunctionInfo,
                                    set[str]]]] = {}
        for name in sorted(self.model.modules):
            info = self.model.modules[name]
            for qualname in sorted(info.functions):
                fn = info.functions[qualname]
                types = self.model.local_types(info, fn)
                for assign in fn.assigns:
                    value = assign["v"]
                    if value.get("k") != "call":
                        continue
                    callee = self.model.resolve_call(
                        value, info, fn, types
                    )
                    if callee is None:
                        continue
                    entry = index.setdefault(callee, [])
                    found = None
                    for existing in entry:
                        if existing[1] is fn:
                            found = existing
                            break
                    if found is None:
                        entry.append((info, fn, {assign["t"]}))
                    else:
                        found[2].add(assign["t"])
        self._callers = index
        return index

    def _returned(self, fn: FunctionInfo, aliases: set[str]) -> bool:
        return any(
            expr.get("k") == "name" and expr["id"] in aliases
            for expr in fn.returns
        )

    def _caller_cancels(self, info: ModuleInfo, fn: FunctionInfo,
                        depth: int = 0) -> bool:
        """Every known caller that binds our return cancels it."""
        if depth > 2:
            return False
        key = f"{info.module}:{fn.qualname}"
        callers = self._caller_index().get(key, [])
        if not callers:
            return False
        for caller_info, caller_fn, bindings in callers:
            proven = False
            for bound in sorted(bindings):
                if self._handle_proven(
                    caller_info, caller_fn, bound, depth + 1
                ):
                    proven = True
                    break
            if not proven:
                return False
        return True

    # -- the combined proof -------------------------------------------------

    def _handle_proven(self, info: ModuleInfo, fn: FunctionInfo,
                       handle: str, depth: int = 0) -> bool:
        aliases = self._aliases_of(fn, handle)
        if self._cancelled_locally(fn, aliases):
            return True
        self_attrs = {a for a in aliases if a.startswith("self.")}
        if self_attrs and fn.cls is not None:
            if self._class_cancels(info, fn.cls, self_attrs):
                return True
        containers = self._containers_of(fn, aliases)
        if containers:
            self_containers = {
                c for c in containers if c.startswith("self.")
            }
            if self._container_cancels(
                info, fn.cls if self_containers else None,
                containers,
            ):
                return True
        if self._returned(fn, aliases):
            if self._caller_cancels(info, fn, depth):
                return True
        return False

    def findings_for(self, info: ModuleInfo) -> list[Finding]:
        out: list[Finding] = []
        for qualname in sorted(info.functions):
            fn = info.functions[qualname]
            for guard in fn.guards:
                handle = guard["handle"]
                if handle is None:
                    continue
                if not self._handle_proven(info, fn, handle):
                    out.append(Finding(
                        path=info.path, line=guard["line"], col=0,
                        code="GL103",
                        message=(
                            f"guard timer `{handle}` is armed here but "
                            "no cancel()/stop() path exists on any of "
                            "its aliases — an abandoned guard holds "
                            "the event queue open (leak-sweep class: "
                            "armed-guard)"
                        ),
                    ))
        return sorted(set(out))


def check_gl103(model: ProjectModel) -> dict[str, list[Finding]]:
    """Prove every guard-tagged timer cancellable; report the rest."""
    analysis = _GuardPass(model)
    out: dict[str, list[Finding]] = {}
    for name in sorted(model.modules):
        found = analysis.findings_for(model.modules[name])
        if found:
            out[name] = found
    return out
