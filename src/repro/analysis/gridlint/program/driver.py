"""The program-analysis driver: parse, cache, resolve, run rules.

``analyze_project`` is the one entry point.  Cold path: every file is
parsed (in parallel across processes when the batch is large enough),
file-local rules run per file, facts are extracted, the project model
is built and GL101-GL105 run over it.  Warm path: per-file content
hashes match the cache, so parses are skipped wholesale; the
program-rule keys (file hash for GL104, import-closure digest for
GL101/GL102/GL105, whole-run digest for GL103) are recomputed from cached
closure lists *without* materialising the model, and when everything
matches the run never builds a single AST.
"""

from __future__ import annotations

import ast
import os
from dataclasses import dataclass, field
from typing import Any, Sequence

from repro.analysis.gridlint.engine import _context_for, collect_files
from repro.analysis.gridlint.findings import Finding
from repro.analysis.gridlint.pragmas import PragmaMap, parse_pragmas
from repro.analysis.gridlint.program.cache import (
    AnalysisCache,
    combine_digests,
    file_digest,
)
from repro.analysis.gridlint.program.dimensions import check_gl102
from repro.analysis.gridlint.program.guards import check_gl103
from repro.analysis.gridlint.program.model import (
    ModuleInfo,
    extract_module,
)
from repro.analysis.gridlint.program.parity import check_gl104
from repro.analysis.gridlint.program.project import ProjectModel
from repro.analysis.gridlint.program.retries import check_gl105
from repro.analysis.gridlint.program.taint import check_gl101
from repro.analysis.gridlint.rules import check_tree

__all__ = ["ProgramRunStats", "analyze_project", "parse_one"]

#: Program-finding partitions and the rules they carry (see cache.py).
_PARTS = ("local", "closure", "global")


@dataclass
class ProgramRunStats:
    """What one run did — the incremental-cache observability hook."""

    files: int = 0
    #: Files parsed fresh this run vs. served from the cache.
    parses: int = 0
    parse_reused: int = 0
    #: Per program-part: module names recomputed this run.
    recomputed: dict[str, list[str]] = field(default_factory=dict)
    #: Per program-part: count of modules served from the cache.
    reused: dict[str, int] = field(default_factory=dict)

    def describe(self) -> str:
        parts = ", ".join(
            f"{part}: {len(self.recomputed.get(part, []))} fresh / "
            f"{self.reused.get(part, 0)} cached"
            for part in _PARTS
        )
        return (
            f"{self.files} files ({self.parses} parsed, "
            f"{self.parse_reused} cached); program [{parts}]"
        )


def parse_one(path: str) -> dict[str, Any]:
    """Parse + lint + extract one file.  Multiprocessing-safe worker.

    Returns a JSON-serialisable record; parse failures degrade to a
    GL000 finding with ``info: None`` (the module drops out of the
    program model but file-local reporting still works).
    """
    try:
        with open(path, "rb") as handle:
            data = handle.read()
        source = data.decode("utf-8")
    except (OSError, UnicodeDecodeError) as error:
        return {
            "path": path, "hash": None,
            "local": [{
                "path": path, "line": 1, "col": 0, "code": "GL000",
                "message": f"cannot read file: {error}",
            }],
            "pragmas": PragmaMap().as_dict(), "info": None,
        }
    digest = file_digest(data)
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as error:
        return {
            "path": path, "hash": digest,
            "local": [{
                "path": path, "line": error.lineno or 1,
                "col": error.offset or 0, "code": "GL000",
                "message": f"syntax error: {error.msg}",
            }],
            "pragmas": PragmaMap().as_dict(), "info": None,
        }
    local = check_tree(tree, _context_for(path))
    pragmas = parse_pragmas(source.splitlines())
    pragmas.expand_multiline(tree)
    info = extract_module(path, source)
    return {
        "path": path, "hash": digest,
        "local": [f.as_dict() for f in local],
        "pragmas": pragmas.as_dict(),
        "info": info.as_dict(),
    }


def _parse_many(paths: list[str], jobs: int) -> list[dict[str, Any]]:
    """Parse a batch, across processes when it is worth the forking."""
    workers = jobs if jobs > 0 else (os.cpu_count() or 1)
    if len(paths) >= 16 and workers > 1:
        try:
            from concurrent.futures import ProcessPoolExecutor
            chunk = max(4, len(paths) // (workers * 4))
            with ProcessPoolExecutor(max_workers=workers) as pool:
                return list(pool.map(parse_one, paths, chunksize=chunk))
        except (OSError, ImportError, RuntimeError):
            pass  # no usable process pool: fall through to serial
    return [parse_one(path) for path in paths]


def _program_rules(model: ProjectModel) -> dict[str, dict[str, list[Finding]]]:
    """Run GL101-GL105; findings keyed by part then module name."""
    gl101 = check_gl101(model)
    gl102 = check_gl102(model)
    gl105 = check_gl105(model)
    closure: dict[str, list[Finding]] = {}
    for name in sorted(set(gl101) | set(gl102) | set(gl105)):
        closure[name] = sorted(
            gl101.get(name, []) + gl102.get(name, [])
            + gl105.get(name, [])
        )
    return {
        "local": check_gl104(model),
        "closure": closure,
        "global": check_gl103(model),
    }


def analyze_project(
    paths: Sequence[str],
    *,
    program: bool = True,
    cache: AnalysisCache | None = None,
    jobs: int = 0,
    respect_pragmas: bool = True,
) -> tuple[list[Finding], ProgramRunStats]:
    """Lint ``paths`` with file-local and (optionally) program rules.

    Returns unfiltered findings (pragmas applied, but no select/ignore
    or baseline — the CLI layers those) plus run statistics.
    """
    if cache is None:
        cache = AnalysisCache(None)
    files = collect_files(paths)
    stats = ProgramRunStats(files=len(files))
    records: dict[str, dict[str, Any]] = {}
    to_parse: list[str] = []
    for path in files:
        try:
            with open(path, "rb") as handle:
                digest = file_digest(handle.read())
        except OSError:
            digest = None
        entry = cache.entry_for(path, digest) if digest else None
        if entry is not None:
            records[path] = entry
            stats.parse_reused += 1
        else:
            to_parse.append(path)
    for result in _parse_many(to_parse, jobs):
        path = result["path"]
        entry = cache.store_parse(
            path, result["hash"], result["local"],
            result["pragmas"], result["info"],
        )
        if result["info"] is not None:
            entry["module"] = result["info"]["module"]
        records[path] = entry
        stats.parses += 1

    findings: list[Finding] = []
    for path in files:
        for item in records[path]["local"]:
            findings.append(Finding(**item))

    if program:
        findings.extend(_run_program(files, records, cache, stats))

    if respect_pragmas:
        by_path: dict[str, PragmaMap] = {}
        kept: list[Finding] = []
        for finding in findings:
            pragmas = by_path.get(finding.path)
            if pragmas is None:
                entry = records.get(finding.path)
                pragmas = PragmaMap.from_dict(
                    entry["pragmas"] if entry else {}
                )
                by_path[finding.path] = pragmas
            if not pragmas.suppresses(finding.line, finding.code):
                kept.append(finding)
        findings = kept

    cache.prune(set(files))
    cache.save()
    return sorted(findings), stats


def _run_program(files: list[str], records: dict[str, dict[str, Any]],
                 cache: AnalysisCache,
                 stats: ProgramRunStats) -> list[Finding]:
    """The incremental program-rule pipeline (see module docstring)."""
    # Module name and digest per analysable file (info present).
    module_entry: dict[str, dict[str, Any]] = {}
    module_digest: dict[str, str] = {}
    for path in files:
        entry = records[path]
        info = entry.get("info")
        if info is None or entry.get("hash") is None:
            continue
        name = entry.get("module") or info["module"]
        entry["module"] = name
        module_entry[name] = entry
        module_digest[name] = entry["hash"]

    global_key = combine_digests(sorted(
        f"{name}:{digest}" for name, digest in module_digest.items()
    ))

    def closure_key(names: list[str]) -> str:
        return combine_digests(sorted(
            f"{name}:{module_digest.get(name, '')}" for name in names
        ))

    # Decide, per part, which modules need recomputation.
    need: dict[str, list[str]] = {part: [] for part in _PARTS}
    cached: dict[str, dict[str, list[Finding]]] = {
        part: {} for part in _PARTS
    }
    for name in sorted(module_entry):
        entry = module_entry[name]
        keys = {
            "local": module_digest[name],
            "global": global_key,
        }
        stored_closure = entry.get("closure")
        keys["closure"] = (
            closure_key(stored_closure)
            if isinstance(stored_closure, list) else ""
        )
        for part in _PARTS:
            found = (
                cache.program_findings(entry, part, keys[part])
                if keys[part] else None
            )
            if found is None:
                need[part].append(name)
            else:
                cached[part][name] = [Finding(**d) for d in found]
                stats.reused[part] = stats.reused.get(part, 0) + 1

    out: list[Finding] = []
    if any(need.values()):
        model = ProjectModel(
            ModuleInfo.from_dict(module_entry[name]["info"])
            for name in sorted(module_entry)
        )
        fresh = _program_rules(model)
        for part in _PARTS:
            for name in need[part]:
                entry = module_entry[name]
                closure = sorted(model.import_closure(name))
                entry["closure"] = closure
                key = {
                    "local": module_digest[name],
                    "closure": closure_key(closure),
                    "global": global_key,
                }[part]
                found = fresh[part].get(name, [])
                cache.store_program(
                    entry, part, key, [f.as_dict() for f in found]
                )
                cached[part][name] = found
            stats.recomputed[part] = list(need[part])
    else:
        for part in _PARTS:
            stats.recomputed[part] = []
    for part in _PARTS:
        for name in sorted(cached[part]):
            out.extend(cached[part][name])
    return out
