"""Per-module fact extraction for the whole-program analysis.

One parse of a module produces a :class:`ModuleInfo`: imports, classes,
and per-function facts (assignments, returns, calls, ``+``/``-``
arithmetic, guard-timer arming/cancelling, fast-path toggle branches)
encoded as plain JSON-serialisable dictionaries.  The interprocedural
rules (GL101-GL104) run over these facts only — never over raw ASTs —
which is what lets the incremental cache skip re-parsing unchanged
modules entirely.

Expression encoding (``Expr`` is a plain dict)::

    {"k": "const", "v": 3.5}
    {"k": "name", "id": "self.sim"}          # dotted chain from a Name
    {"k": "attr", "base": Expr, "attr": "x"} # non-chain attribute access
    {"k": "sub",  "base": Expr, "index": Expr}
    {"k": "call", "tgt": "time.time", "recv": None, "method": None,
     "args": [...], "kw": {...}, "line": 10, "col": 4}
    {"k": "binop", "op": "+", "l": Expr, "r": Expr, "line": 3, "col": 8}
    {"k": "other", "sub": [Expr, ...]}

``tgt`` on calls is the canonical dotted target with import aliases
resolved (``import time as t; t.time()`` encodes as ``time.time``);
chains rooted at ``self`` keep their ``self.`` prefix for the project
layer to resolve against the enclosing class.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Any

__all__ = [
    "ClassInfo",
    "Expr",
    "FunctionInfo",
    "ModuleInfo",
    "extract_module",
    "module_name_for_path",
]

Expr = dict[str, Any]

#: Bump when the extraction schema changes — part of the cache key.
MODEL_VERSION = 2

#: Method names whose call produces a schedulable timer/event handle
#: (used by GL103 to tie a ``guard_tag`` assignment to its creation).
_TIMER_FACTORIES = {"timeout", "schedule", "event", "process"}

#: Environment-read call targets (GL101 taint sources, GL104 toggles).
ENV_READ_TARGETS = {"os.environ.get", "os.getenv", "os.environ.__getitem__"}


def module_name_for_path(path: str) -> str:
    """Best-effort dotted module name for a file path.

    Paths under a ``src/`` root map to their import path
    (``src/repro/sim/kernel.py`` -> ``repro.sim.kernel``); anything else
    uses the file stem, so sibling fixture files can still import each
    other by name in tests.
    """
    normalized = path.replace("\\", "/")
    marker = "src/"
    index = normalized.rfind(marker)
    if index >= 0:
        tail = normalized[index + len(marker):]
    else:
        tail = normalized.rsplit("/", 1)[-1]
    if tail.endswith(".py"):
        tail = tail[:-3]
    if tail.endswith("/__init__"):
        tail = tail[: -len("/__init__")]
    return tail.replace("/", ".")


@dataclass
class ClassInfo:
    """One class definition: bases (canonicalised) and method names."""

    name: str
    line: int
    bases: list[str] = field(default_factory=list)
    methods: list[str] = field(default_factory=list)

    def as_dict(self) -> dict[str, Any]:
        return {
            "name": self.name, "line": self.line,
            "bases": self.bases, "methods": self.methods,
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "ClassInfo":
        return cls(
            name=data["name"], line=data["line"],
            bases=list(data["bases"]), methods=list(data["methods"]),
        )


@dataclass
class FunctionInfo:
    """Facts about one function or method (or the module body).

    ``assigns`` bind dotted targets (``x``, ``self.attr``) to encoded
    value expressions; ``calls`` and ``binops`` are flattened from every
    nesting depth, in source order.  ``guards`` records
    ``<handle>.guard_tag = ...`` armings, ``cancels`` every receiver of
    a ``.cancel()`` call, ``appends`` container ``.append(name)`` calls
    (alias tracking for GL103), ``toggles`` fast-path toggle branches
    with the ``self.*`` attributes each arm writes (GL104), and
    ``loops`` every ``for``/``while`` with the calls issued *per
    iteration* — its body plus, for ``while``, its test — as
    ``{"line", "end", "calls"}`` (GL105).  Calls inside a nested
    function definition run when the closure is invoked, not per
    iteration, so they are never attributed to an enclosing loop.
    """

    name: str
    qualname: str
    line: int
    cls: str | None = None
    params: list[str] = field(default_factory=list)
    assigns: list[dict[str, Any]] = field(default_factory=list)
    returns: list[Expr] = field(default_factory=list)
    yields: list[Expr] = field(default_factory=list)
    calls: list[Expr] = field(default_factory=list)
    binops: list[Expr] = field(default_factory=list)
    guards: list[dict[str, Any]] = field(default_factory=list)
    cancels: list[str] = field(default_factory=list)
    appends: list[dict[str, Any]] = field(default_factory=list)
    toggles: list[dict[str, Any]] = field(default_factory=list)
    loops: list[dict[str, Any]] = field(default_factory=list)

    def as_dict(self) -> dict[str, Any]:
        return {
            "name": self.name, "qualname": self.qualname,
            "line": self.line, "cls": self.cls, "params": self.params,
            "assigns": self.assigns, "returns": self.returns,
            "yields": self.yields, "calls": self.calls,
            "binops": self.binops, "guards": self.guards,
            "cancels": self.cancels, "appends": self.appends,
            "toggles": self.toggles, "loops": self.loops,
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "FunctionInfo":
        return cls(**data)


@dataclass
class ModuleInfo:
    """Everything the program layer knows about one module."""

    path: str
    module: str
    imports: dict[str, str] = field(default_factory=dict)
    imported_modules: list[str] = field(default_factory=list)
    classes: dict[str, ClassInfo] = field(default_factory=dict)
    functions: dict[str, FunctionInfo] = field(default_factory=dict)

    def as_dict(self) -> dict[str, Any]:
        return {
            "path": self.path,
            "module": self.module,
            "imports": self.imports,
            "imported_modules": self.imported_modules,
            "classes": {k: v.as_dict() for k, v in self.classes.items()},
            "functions": {k: v.as_dict() for k, v in self.functions.items()},
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "ModuleInfo":
        return cls(
            path=data["path"],
            module=data["module"],
            imports=dict(data["imports"]),
            imported_modules=list(data["imported_modules"]),
            classes={
                k: ClassInfo.from_dict(v)
                for k, v in data["classes"].items()
            },
            functions={
                k: FunctionInfo.from_dict(v)
                for k, v in data["functions"].items()
            },
        )


def _dotted_chain(node: ast.expr) -> str | None:
    """``a.b.c`` as a dotted string when rooted at a plain Name."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


class _Extractor:
    """Walks one module AST into a :class:`ModuleInfo`."""

    def __init__(self, path: str, module: str) -> None:
        self.info = ModuleInfo(path=path, module=module)
        self._imports = self.info.imports
        self._class_stack: list[ClassInfo] = []
        self._fn_stack: list[FunctionInfo] = []
        self._loop_stack: list[dict[str, Any]] = []

    # -- imports -----------------------------------------------------------

    def _record_import(self, node: ast.Import) -> None:
        for alias in node.names:
            local = alias.asname or alias.name.split(".")[0]
            self._imports[local] = (
                alias.name if alias.asname else alias.name.split(".")[0]
            )
            self.info.imported_modules.append(alias.name)

    def _record_import_from(self, node: ast.ImportFrom) -> None:
        module = node.module or ""
        if node.level:
            # Relative import: best-effort absolute form from our name.
            parts = self.info.module.split(".")
            base = parts[: len(parts) - node.level]
            module = ".".join(base + ([module] if module else []))
        if module:
            self.info.imported_modules.append(module)
        for alias in node.names:
            local = alias.asname or alias.name
            self._imports[local] = (
                f"{module}.{alias.name}" if module else alias.name
            )

    # -- expression encoding -----------------------------------------------

    def _canonical(self, dotted: str) -> str:
        head, _, rest = dotted.partition(".")
        if head == "self":
            return dotted
        head = self._imports.get(head, head)
        return f"{head}.{rest}" if rest else head

    def _encode(self, node: ast.expr | None) -> Expr:
        if node is None:
            return {"k": "const", "v": None}
        if isinstance(node, ast.Constant):
            value = node.value
            if isinstance(value, (int, float, str, bool)) or value is None:
                return {"k": "const", "v": value}
            return {"k": "const", "v": repr(value)}
        if isinstance(node, (ast.Name, ast.Attribute)):
            chain = _dotted_chain(node)
            if chain is not None:
                return {"k": "name", "id": self._canonical(chain)}
            assert isinstance(node, ast.Attribute)
            return {
                "k": "attr", "base": self._encode(node.value),
                "attr": node.attr,
            }
        if isinstance(node, ast.Subscript):
            return {
                "k": "sub", "base": self._encode(node.value),
                "index": self._encode(node.slice),
            }
        if isinstance(node, ast.Call):
            return self._encode_call(node)
        if isinstance(node, ast.BinOp):
            op = _BINOPS.get(type(node.op), "?")
            encoded = {
                "k": "binop", "op": op,
                "l": self._encode(node.left),
                "r": self._encode(node.right),
                "line": node.lineno, "col": node.col_offset,
            }
            if op in ("+", "-") and self._fn_stack:
                self._fn_stack[-1].binops.append(encoded)
            return encoded
        if isinstance(node, ast.UnaryOp):
            return self._encode(node.operand)
        if isinstance(node, ast.IfExp):
            return {"k": "other", "sub": [
                self._encode(node.test), self._encode(node.body),
                self._encode(node.orelse),
            ]}
        if isinstance(node, ast.Await):
            return self._encode(node.value)
        if isinstance(node, (ast.Yield, ast.YieldFrom)):
            inner = self._encode(node.value) if node.value else None
            if inner is not None and self._fn_stack:
                self._fn_stack[-1].yields.append(inner)
            return {"k": "other", "sub": [inner] if inner else []}
        # Everything else: keep the children so taint still flows.
        children = [
            self._encode(child)
            for child in ast.iter_child_nodes(node)
            if isinstance(child, ast.expr)
        ]
        return {"k": "other", "sub": children}

    def _encode_call(self, node: ast.Call) -> Expr:
        tgt: str | None = None
        recv: str | None = None
        method: str | None = None
        chain = _dotted_chain(node.func)
        if chain is not None:
            tgt = self._canonical(chain)
        if isinstance(node.func, ast.Attribute):
            method = node.func.attr
            recv_chain = _dotted_chain(node.func.value)
            if recv_chain is not None:
                recv = self._canonical(recv_chain)
        encoded: Expr = {
            "k": "call", "tgt": tgt, "recv": recv, "method": method,
            "args": [self._encode(arg) for arg in node.args],
            "kw": {
                kw.arg: self._encode(kw.value)
                for kw in node.keywords if kw.arg is not None
            },
            "line": node.lineno, "col": node.col_offset,
        }
        if self._fn_stack:
            fn = self._fn_stack[-1]
            fn.calls.append(encoded)
            for loop in self._loop_stack:
                loop["calls"].append(encoded)
            if method == "cancel" and recv is not None and not node.args:
                fn.cancels.append(recv)
            if (method == "append" and recv is not None
                    and len(node.args) == 1):
                value = encoded["args"][0]
                if value.get("k") == "name":
                    fn.appends.append({
                        "container": recv, "value": value["id"],
                        "line": node.lineno,
                    })
        return encoded

    # -- statements --------------------------------------------------------

    def extract(self, tree: ast.Module) -> ModuleInfo:
        body_fn = FunctionInfo(
            name="<module>", qualname="<module>", line=1,
        )
        self.info.functions["<module>"] = body_fn
        self._fn_stack.append(body_fn)
        for stmt in tree.body:
            self._stmt(stmt)
        self._fn_stack.pop()
        return self.info

    def _stmt(self, node: ast.stmt) -> None:
        if isinstance(node, ast.Import):
            self._record_import(node)
        elif isinstance(node, ast.ImportFrom):
            self._record_import_from(node)
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            self._function(node)
        elif isinstance(node, ast.ClassDef):
            self._class(node)
        elif isinstance(node, ast.Assign):
            value = self._encode(node.value)
            for target in node.targets:
                self._assign_target(target, value, node.lineno)
        elif isinstance(node, ast.AnnAssign):
            if node.value is not None:
                self._assign_target(
                    node.target, self._encode(node.value), node.lineno
                )
        elif isinstance(node, ast.AugAssign):
            self._assign_target(
                node.target, self._encode(node.value), node.lineno,
            )
        elif isinstance(node, ast.Return):
            if node.value is not None:
                self._fn_stack[-1].returns.append(self._encode(node.value))
        elif isinstance(node, ast.Expr):
            self._encode(node.value)
        elif isinstance(node, (ast.Raise, ast.Assert, ast.Delete)):
            for child in ast.iter_child_nodes(node):
                if isinstance(child, ast.expr):
                    self._encode(child)
        elif isinstance(node, ast.If):
            self._if(node)
        elif isinstance(node, (ast.For, ast.AsyncFor)):
            # The iterable is evaluated once, before the first
            # iteration — its calls stay outside the loop record.
            iterable = self._encode(node.iter)
            value: Expr = {"k": "other", "sub": [iterable]}
            self._assign_target(node.target, value, node.lineno)
            self._loop(node, lambda: self._block(node.body))
            self._block(node.orelse)
        elif isinstance(node, ast.While):
            # The test re-evaluates every iteration: it belongs to
            # the loop record alongside the body.
            self._loop(node, lambda: (
                self._encode(node.test), self._block(node.body)
            ))
            self._block(node.orelse)
        elif isinstance(node, (ast.With, ast.AsyncWith)):
            for item in node.items:
                value = self._encode(item.context_expr)
                if item.optional_vars is not None:
                    self._assign_target(
                        item.optional_vars, value, node.lineno
                    )
            self._block(node.body)
        elif isinstance(node, ast.Try):
            self._block(node.body)
            for handler in node.handlers:
                self._block(handler.body)
            self._block(node.orelse)
            self._block(node.finalbody)
        # Pass/Break/Continue/Global/Nonlocal: nothing to record.

    def _block(self, body: list[ast.stmt]) -> None:
        for stmt in body:
            self._stmt(stmt)

    def _loop(self, node: ast.stmt, visit) -> None:
        """Record one loop's per-iteration calls while visiting it."""
        record: dict[str, Any] = {
            "line": node.lineno,
            "end": node.end_lineno or node.lineno,
            "calls": [],
        }
        self._fn_stack[-1].loops.append(record)
        self._loop_stack.append(record)
        try:
            visit()
        finally:
            self._loop_stack.pop()

    def _assign_target(self, target: ast.expr, value: Expr,
                       line: int) -> None:
        if isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._assign_target(element, value, line)
            return
        if isinstance(target, ast.Starred):
            self._assign_target(target.value, value, line)
            return
        chain = _dotted_chain(target)
        if chain is None:
            return
        fn = self._fn_stack[-1]
        if chain.endswith(".guard_tag"):
            handle = chain[: -len(".guard_tag")]
            fn.guards.append({"handle": handle, "line": line})
            return
        fn.assigns.append({"t": chain, "v": value, "line": line})

    # -- functions and classes ---------------------------------------------

    def _function(self, node: ast.FunctionDef | ast.AsyncFunctionDef) -> None:
        cls = self._class_stack[-1].name if self._class_stack else None
        parent = self._fn_stack[-1]
        if parent.name == "<module>":
            qualname = f"{cls}.{node.name}" if cls else node.name
        else:
            qualname = f"{parent.qualname}.<locals>.{node.name}"
        args = node.args
        params = [
            a.arg for a in (
                args.posonlyargs + args.args + args.kwonlyargs
            )
        ]
        if cls and params and params[0] in ("self", "cls"):
            params = params[1:]
        fn = FunctionInfo(
            name=node.name, qualname=qualname, line=node.lineno,
            cls=cls, params=params,
        )
        self.info.functions[qualname] = fn
        if self._class_stack:
            self._class_stack[-1].methods.append(node.name)
        for default in list(args.defaults) + [
            d for d in args.kw_defaults if d is not None
        ]:
            self._encode(default)
        saved_loops, self._loop_stack = self._loop_stack, []
        self._fn_stack.append(fn)
        self._block(node.body)
        self._fn_stack.pop()
        self._loop_stack = saved_loops

    def _class(self, node: ast.ClassDef) -> None:
        bases = []
        for base in node.bases:
            chain = _dotted_chain(base)
            if chain is not None:
                bases.append(self._canonical(chain))
        info = ClassInfo(name=node.name, line=node.lineno, bases=bases)
        self.info.classes[node.name] = info
        self._class_stack.append(info)
        self._block(node.body)
        self._class_stack.pop()

    # -- fast-path toggle branches (GL104 facts) ---------------------------

    def _if(self, node: ast.If) -> None:
        test = self._encode(node.test)
        env = self._toggle_in(test)
        if env is not None:
            arm_writes = [sorted(self._self_writes(node.body))]
            orelse: list[ast.stmt] = node.orelse
            has_else = bool(orelse)
            # Flatten elif chains into additional arms.
            while len(orelse) == 1 and isinstance(orelse[0], ast.If):
                chained = orelse[0]
                arm_writes.append(sorted(self._self_writes(chained.body)))
                orelse = chained.orelse
                has_else = bool(orelse)
            if orelse:
                arm_writes.append(sorted(self._self_writes(orelse)))
            self._fn_stack[-1].toggles.append({
                "env": env, "line": node.lineno,
                "end": node.end_lineno or node.lineno,
                "arms": arm_writes, "else": has_else,
            })
        self._block(node.body)
        self._block(node.orelse)

    def _toggle_in(self, expr: Expr,
                   seen: frozenset[str] = frozenset()) -> str | None:
        """REPRO_* env var read inside a test expression, if any.

        ``seen`` holds names already being resolved, so cyclic or
        self-referential bindings (``kind = kind or default``) cannot
        recurse forever.
        """
        if expr["k"] == "call":
            if expr.get("tgt") in ENV_READ_TARGETS and expr["args"]:
                first = expr["args"][0]
                if (first.get("k") == "const"
                        and isinstance(first.get("v"), str)
                        and first["v"].startswith("REPRO_")):
                    return str(first["v"])
            for child in expr["args"] + list(expr["kw"].values()):
                found = self._toggle_in(child, seen)
                if found is not None:
                    return found
            return None
        if expr["k"] == "name":
            # A name bound from an env read earlier in this function
            # (or at module level): `kind = os.environ.get(...)`.
            name = expr["id"]
            if name in seen:
                return None
            seen = seen | {name}
            for fn in (self._fn_stack[-1],
                       self.info.functions.get("<module>")):
                if fn is None:
                    continue
                for assign in fn.assigns:
                    if assign["t"] == name:
                        found = self._toggle_in(assign["v"], seen)
                        if found is not None:
                            return found
            return None
        for child in _expr_children(expr):
            found = self._toggle_in(child, seen)
            if found is not None:
                return found
        return None

    def _self_writes(self, body: list[ast.stmt]) -> set[str]:
        """``self.*`` attributes assigned anywhere under ``body``."""
        writes: set[str] = set()
        for stmt in body:
            for node in ast.walk(stmt):
                targets: list[ast.expr] = []
                if isinstance(node, ast.Assign):
                    targets = list(node.targets)
                elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
                    targets = [node.target]
                for target in targets:
                    chain = _dotted_chain(target)
                    if chain is not None and chain.startswith("self."):
                        writes.add(chain)
        return writes


_BINOPS: dict[type, str] = {
    ast.Add: "+", ast.Sub: "-", ast.Mult: "*", ast.Div: "/",
    ast.FloorDiv: "//", ast.Mod: "%", ast.Pow: "**",
    ast.LShift: "<<", ast.RShift: ">>", ast.BitOr: "|",
    ast.BitAnd: "&", ast.BitXor: "^", ast.MatMult: "@",
}


def _expr_children(expr: Expr) -> list[Expr]:
    """Child expressions of an encoded node, for generic traversal."""
    kind = expr["k"]
    if kind == "call":
        return list(expr["args"]) + list(expr["kw"].values())
    if kind == "binop":
        return [expr["l"], expr["r"]]
    if kind == "attr":
        return [expr["base"]]
    if kind == "sub":
        return [expr["base"], expr["index"]]
    if kind == "other":
        return [child for child in expr["sub"] if child is not None]
    return []


def extract_module(path: str, source: str,
                   module: str | None = None) -> ModuleInfo:
    """Parse ``source`` and extract its :class:`ModuleInfo`.

    Raises :class:`SyntaxError` on unparsable source — the caller (the
    driver) degrades that module to file-local analysis only.
    """
    tree = ast.parse(source, filename=path)
    name = module if module is not None else module_name_for_path(path)
    return _Extractor(path, name).extract(tree)
