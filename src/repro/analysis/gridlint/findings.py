"""The :class:`Finding` record produced by every gridlint rule."""

from __future__ import annotations

from dataclasses import asdict, dataclass, field

__all__ = ["Finding"]


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at a source location.

    Findings sort by location so reports are stable regardless of the
    order rules ran in.
    """

    path: str
    line: int
    col: int
    code: str = field(compare=False)
    message: str = field(compare=False)

    def as_dict(self) -> dict:
        return asdict(self)

    def __str__(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.code} {self.message}"
