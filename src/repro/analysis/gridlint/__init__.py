"""gridlint — codebase-specific static checks for the reproduction.

The rule catalog lives in :mod:`repro.analysis.gridlint.rules` (GL001
wall-clock, GL002 rogue RNG, GL003 unordered iteration, GL004 inline
unit arithmetic, GL005 mutable defaults, GL006 swallowed exceptions);
the engine, pragma handling and output formats are documented in
``docs/static_analysis.md``.

Programmatic use::

    from repro.analysis.gridlint import lint_paths
    findings = lint_paths(["src/"])

Command line::

    repro-lint src/
    python -m repro.analysis.gridlint --format json src/
"""

from repro.analysis.gridlint.cli import main
from repro.analysis.gridlint.engine import (
    collect_files,
    lint_file,
    lint_paths,
    lint_source,
)
from repro.analysis.gridlint.findings import Finding
from repro.analysis.gridlint.formats import FORMATS, render
from repro.analysis.gridlint.rules import RULES

__all__ = [
    "FORMATS",
    "Finding",
    "RULES",
    "collect_files",
    "lint_file",
    "lint_paths",
    "lint_source",
    "main",
    "render",
]
