"""The gridlint rule catalog (GL001-GL007) as one AST pass.

Each rule exists because a specific failure mode would silently corrupt
the paper reproduction (see ``docs/static_analysis.md`` for the full
rationale):

* GL001 — wall-clock reads (``time.time`` & friends) leak host time into
  a simulation whose only clock is ``Simulator.now``.
* GL002 — the ``random`` module bypasses the seeded named streams in
  :mod:`repro.sim.random_streams`, breaking run-to-run reproducibility.
* GL003 — iterating an unordered ``set`` (or opaque ``.keys()`` view)
  feeds nondeterministic ordering into event scheduling / score ranking.
* GL004 — inline unit arithmetic (``* 1e6 / 8``, ``1024 * 1024``)
  re-derives conversions :mod:`repro.units` already centralises, the
  classic source of Mbps-vs-MiB/s mix-ups.
* GL005 — mutable default arguments alias state across calls.
* GL006 — bare ``except:`` / swallowed broad exceptions hide
  :class:`~repro.sim.errors.SimulationError` programming errors.
* GL007 — direct :func:`repro.gridftp.datachannel.run_data_transfer`
  use outside :mod:`repro.gridftp` bypasses the block-checksum
  verification the client layer performs on every read.
"""

from __future__ import annotations

import ast

from repro.analysis.gridlint.findings import Finding

__all__ = ["RULES", "FileContext", "check_tree"]

#: code -> one-line description (the CLI's ``--list-rules`` output).
RULES = {
    "GL001": "wall-clock read (time.time/monotonic, datetime.now/...) — "
             "simulated code must use Simulator.now",
    "GL002": "direct use of the `random` module — draw from the seeded "
             "named streams (sim.streams.get(name)) instead",
    "GL003": "iteration over an unordered set / .keys() view — sort (or "
             "justify with a pragma) before ordering-sensitive use",
    "GL004": "inline unit-conversion arithmetic — use the repro.units "
             "helpers (mbit_per_s, megabytes, KiB/MiB/GiB, ...)",
    "GL005": "mutable default argument — aliases state across calls; "
             "default to None and create inside the function",
    "GL006": "bare except / swallowed broad exception — narrow the type "
             "or handle the error; SimulationError must not vanish",
    "GL007": "direct datachannel transfer outside repro.gridftp — raw "
             "reads bypass block-checksum verification; go through "
             "GridFtpClient / ReliableFileTransfer",
    # Interprocedural rules (repro.analysis.gridlint.program); they run
    # only in whole-program mode, but live in the shared catalog so
    # --select/--ignore/--list-rules and the SARIF rule table see them.
    "GL101": "determinism taint — a wall-clock/random/environment read "
             "flows (through calls) into kernel scheduling, RNG "
             "seeding or trace output",
    "GL102": "unit-dimension mismatch — seconds/bytes/rates/Mbps "
             "inferred from repro.units annotations and parameter "
             "names disagree at a call argument or +/- expression",
    "GL103": "guard-timer leak — a guard_tag'ed timer is armed with no "
             "reachable cancel()/stop() path on any alias",
    "GL104": "fast-path parity — state written under one REPRO_* "
             "toggle branch that the other branch never writes",
    "GL105": "unthrottled retry loop — a loop reaches the data channel "
             "(transitively) with no backoff, delay or attempt timeout "
             "per iteration",
}

#: Dotted call targets that read the host's clock.
_WALL_CLOCK = {
    "time.time", "time.time_ns",
    "time.monotonic", "time.monotonic_ns",
    "time.perf_counter", "time.perf_counter_ns",
    "time.process_time", "time.process_time_ns",
    "time.localtime", "time.gmtime",
    "datetime.datetime.now", "datetime.datetime.utcnow",
    "datetime.datetime.today", "datetime.date.today",
}

_BROAD_EXCEPTIONS = {"Exception", "BaseException"}
_SIM_EXCEPTIONS = {"SimulationError", "SimError"}

#: The raw data-channel module GL007 fences off.
_DATACHANNEL = "repro.gridftp.datachannel"


class FileContext:
    """Per-file rule switches derived from the path by the engine."""

    def __init__(self, path, is_rng_module=False, is_units_module=False,
                 in_gridftp_package=False):
        self.path = str(path)
        #: ``sim/random_streams.py`` is the one legal home of `random`.
        self.is_rng_module = bool(is_rng_module)
        #: ``repro/units.py`` defines the conversions GL004 points at.
        self.is_units_module = bool(is_units_module)
        #: ``repro/gridftp/`` owns the data channel and may call it raw.
        self.in_gridftp_package = bool(in_gridftp_package)


def check_tree(tree, context):
    """Run every rule over a parsed module; returns a list of Findings."""
    visitor = _RuleVisitor(context)
    visitor.visit(tree)
    return visitor.findings


def _qualified_name(node):
    """Dotted name of an expression like ``a.b.c`` (None if not one)."""
    parts = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


class _RuleVisitor(ast.NodeVisitor):

    def __init__(self, context):
        self.context = context
        self.findings = []
        #: local alias -> imported dotted name (``import x.y as z``,
        #: ``from x import y``), used to canonicalise call targets.
        self._imports = {}
        #: stack of {name: is_set} scopes for GL003's local inference.
        self._set_scopes = [{}]

    def _report(self, node, code, message):
        self.findings.append(Finding(
            path=self.context.path, line=node.lineno,
            col=node.col_offset, code=code, message=message,
        ))

    # -- imports (GL002 + name canonicalisation) --------------------------

    def visit_Import(self, node):
        for alias in node.names:
            self._imports[alias.asname or alias.name.split(".")[0]] = (
                alias.name
            )
            if self._is_random_module(alias.name):
                self._flag_random(node)
            if self._is_datachannel_module(alias.name):
                self._flag_datachannel(node)
        self.generic_visit(node)

    def visit_ImportFrom(self, node):
        module = node.module or ""
        from_datachannel = self._is_datachannel_module(module)
        for alias in node.names:
            self._imports[alias.asname or alias.name] = (
                f"{module}.{alias.name}" if module else alias.name
            )
            if not from_datachannel and self._is_datachannel_module(
                f"{module}.{alias.name}"
            ):
                from_datachannel = True
        if self._is_random_module(module):
            self._flag_random(node)
        if from_datachannel:
            self._flag_datachannel(node)
        self.generic_visit(node)

    @staticmethod
    def _is_random_module(name):
        return name == "random" or name.startswith("random.")

    @staticmethod
    def _is_datachannel_module(name):
        return name == _DATACHANNEL or name.startswith(_DATACHANNEL + ".")

    def _flag_datachannel(self, node):
        if self.context.in_gridftp_package:
            return
        self._report(
            node, "GL007",
            "direct use of repro.gridftp.datachannel; raw transfers "
            "skip block-checksum verification — go through "
            "GridFtpClient.get / ReliableFileTransfer",
        )

    def _flag_random(self, node):
        if self.context.is_rng_module:
            return
        self._report(
            node, "GL002",
            "direct import of `random`; all randomness must come from "
            "the simulator's seeded streams (sim.streams.get(name))",
        )

    def _canonical(self, node):
        """Canonical dotted target of a call, following import aliases."""
        name = _qualified_name(node)
        if name is None:
            return None
        head, _, rest = name.partition(".")
        head = self._imports.get(head, head)
        return f"{head}.{rest}" if rest else head

    # -- GL001 wall clock -------------------------------------------------

    def visit_Call(self, node):
        target = self._canonical(node.func)
        if target in _WALL_CLOCK:
            self._report(
                node, "GL001",
                f"wall-clock call `{target}()`; simulated code must "
                "read time from `Simulator.now`",
            )
        elif (
            target is not None
            and self._is_random_module(target)
            and not self.context.is_rng_module
        ):
            self._report(
                node, "GL002",
                f"call into the `random` module (`{target}`); use the "
                "simulator's seeded streams instead",
            )
        elif (
            target is not None
            and target.startswith(_DATACHANNEL + ".")
            and not self.context.in_gridftp_package
        ):
            self._report(
                node, "GL007",
                f"raw data-channel call `{target}()` bypasses block "
                "verification; go through GridFtpClient / "
                "ReliableFileTransfer",
            )
        self.generic_visit(node)

    # -- GL003 unordered iteration ---------------------------------------

    def _enter_scope(self):
        self._set_scopes.append({})

    def _exit_scope(self):
        self._set_scopes.pop()

    def _bind(self, target, is_set):
        if isinstance(target, ast.Name):
            self._set_scopes[-1][target.id] = is_set

    def _name_is_set(self, name):
        for scope in reversed(self._set_scopes):
            if name in scope:
                return scope[name]
        return False

    def _is_set_expr(self, node):
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
            return node.func.id in ("set", "frozenset")
        if isinstance(node, ast.Name):
            return self._name_is_set(node.id)
        if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
        ):
            return (self._is_set_expr(node.left)
                    or self._is_set_expr(node.right))
        return False

    @staticmethod
    def _is_keys_view(node):
        return (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "keys"
            and not node.args and not node.keywords
        )

    def _check_iterable(self, node):
        if self._is_set_expr(node):
            self._report(
                node, "GL003",
                "iteration over an unordered set; wrap in sorted(...) "
                "so downstream scheduling/ranking stays deterministic",
            )
        elif self._is_keys_view(node):
            self._report(
                node, "GL003",
                "iteration over .keys(); iterate the dict directly or "
                "sorted(d) — the view hides whether insertion order "
                "was deterministic",
            )

    def visit_Assign(self, node):
        is_set = self._is_set_expr(node.value)
        for target in node.targets:
            self._bind(target, is_set)
        self.generic_visit(node)

    def visit_AnnAssign(self, node):
        if node.value is not None:
            self._bind(node.target, self._is_set_expr(node.value))
        self.generic_visit(node)

    def visit_For(self, node):
        self._check_iterable(node.iter)
        self.generic_visit(node)

    def _visit_comprehension(self, node):
        for generator in node.generators:
            self._check_iterable(generator.iter)
        self.generic_visit(node)

    visit_ListComp = _visit_comprehension
    visit_SetComp = _visit_comprehension
    visit_GeneratorExp = _visit_comprehension
    visit_DictComp = _visit_comprehension

    # -- GL004 inline unit arithmetic -------------------------------------

    def _flatten_product(self, node, constants, leaves):
        """Collect numeric constants of a ``*``/``/`` chain."""
        if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.Mult, ast.Div)
        ):
            self._flatten_product(node.left, constants, leaves)
            self._flatten_product(node.right, constants, leaves)
        elif isinstance(node, ast.Constant) and isinstance(
            node.value, (int, float)
        ) and not isinstance(node.value, bool):
            constants.append(node.value)
        else:
            leaves.append(node)

    def visit_BinOp(self, node):
        if self.context.is_units_module:
            self.generic_visit(node)
            return
        if isinstance(node.op, ast.Pow):
            if self._const_pair(node) in ((2, 10), (2, 20), (2, 30), (2, 40)):
                self._report(
                    node, "GL004",
                    "power-of-two size literal; use repro.units "
                    "KiB/MiB/GiB (or megabytes()) instead",
                )
            self.generic_visit(node)
            return
        if isinstance(node.op, ast.LShift):
            if self._const_pair(node) in ((1, 10), (1, 20), (1, 30), (1, 40)):
                self._report(
                    node, "GL004",
                    "shifted size literal; use repro.units KiB/MiB/GiB "
                    "(or megabytes()) instead",
                )
            self.generic_visit(node)
            return
        if not isinstance(node.op, (ast.Mult, ast.Div)):
            self.generic_visit(node)
            return
        # Analyse the whole multiplicative chain once, from its root.
        constants, leaves = [], []
        self._flatten_product(node, constants, leaves)
        self._check_product(node, constants)
        for leaf in leaves:
            self.visit(leaf)

    @staticmethod
    def _const_pair(node):
        if isinstance(node.left, ast.Constant) and isinstance(
            node.right, ast.Constant
        ):
            return (node.left.value, node.right.value)
        return None

    def _check_product(self, node, constants):
        values = set(constants)
        if (8 in values or 8.0 in values) and (
            values & {1e6, 1e9, 1_000_000, 1_000_000_000}
        ):
            self._report(
                node, "GL004",
                "inline bits<->bytes rate conversion; use repro.units "
                "mbit_per_s / gbit_per_s / to_mbit_per_s",
            )
            return
        if values & {1048576, 1048576.0, 1073741824, 1073741824.0}:
            self._report(
                node, "GL004",
                "raw byte-count literal; use repro.units MiB/GiB "
                "(or megabytes())",
            )
            return
        if 1024 in values or 1024.0 in values:
            self._report(
                node, "GL004",
                "1024-multiple size arithmetic; use repro.units "
                "KiB/MiB/GiB (or megabytes())",
            )

    # -- GL005 mutable defaults -------------------------------------------

    def _check_defaults(self, node, name):
        args = node.args
        for default in list(args.defaults) + list(args.kw_defaults):
            if default is None:
                continue
            if self._is_mutable_literal(default):
                self._report(
                    default, "GL005",
                    f"mutable default argument in `{name}()`; "
                    "default to None and create per call",
                )

    @staticmethod
    def _is_mutable_literal(node):
        if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp,
                             ast.DictComp, ast.SetComp)):
            return True
        return (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id in ("list", "dict", "set", "bytearray", "deque")
        )

    def visit_FunctionDef(self, node):
        self._check_defaults(node, node.name)
        self._enter_scope()
        self.generic_visit(node)
        self._exit_scope()

    visit_AsyncFunctionDef = visit_FunctionDef

    def visit_Lambda(self, node):
        self._check_defaults(node, "<lambda>")
        self._enter_scope()
        self.generic_visit(node)
        self._exit_scope()

    def visit_ClassDef(self, node):
        self._enter_scope()
        self.generic_visit(node)
        self._exit_scope()

    # -- GL006 bare / swallowed excepts ------------------------------------

    def visit_ExceptHandler(self, node):
        if node.type is None:
            self._report(
                node, "GL006",
                "bare `except:`; name the exception types you mean",
            )
        elif self._body_is_noop(node.body):
            caught = self._exception_names(node.type)
            broad = caught & _BROAD_EXCEPTIONS
            simerr = caught & _SIM_EXCEPTIONS
            if broad or simerr:
                what = ", ".join(sorted(broad | simerr))
                self._report(
                    node, "GL006",
                    f"`except {what}: pass` swallows errors the kernel "
                    "relies on surfacing; narrow the type or handle it",
                )
        self.generic_visit(node)

    @staticmethod
    def _body_is_noop(body):
        for stmt in body:
            if isinstance(stmt, ast.Pass):
                continue
            if (isinstance(stmt, ast.Expr)
                    and isinstance(stmt.value, ast.Constant)):
                continue
            return False
        return True

    @staticmethod
    def _exception_names(node):
        names = set()
        nodes = node.elts if isinstance(node, ast.Tuple) else [node]
        for item in nodes:
            name = _qualified_name(item)
            if name is not None:
                names.add(name.split(".")[-1])
        return names
