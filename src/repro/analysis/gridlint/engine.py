"""File walking, parsing and pragma application for gridlint."""

from __future__ import annotations

import ast
import os

from repro.analysis.gridlint.findings import Finding
from repro.analysis.gridlint.pragmas import parse_pragmas
from repro.analysis.gridlint.rules import FileContext, check_tree

__all__ = ["collect_files", "lint_file", "lint_paths", "lint_source"]

#: Directory names never descended into.
_SKIP_DIRS = {
    "__pycache__", ".git", ".venv", "venv", "build", "dist",
    ".mypy_cache", ".ruff_cache", ".pytest_cache",
}


def collect_files(paths):
    """Expand files/directories into a sorted list of ``.py`` files."""
    out = []
    for path in paths:
        if os.path.isdir(path):
            for root, dirs, files in os.walk(path):
                dirs[:] = sorted(
                    d for d in dirs
                    if d not in _SKIP_DIRS and not d.endswith(".egg-info")
                )
                for name in sorted(files):
                    if name.endswith(".py"):
                        out.append(os.path.join(root, name))
        else:
            out.append(path)
    return sorted(set(out))


def _context_for(path):
    normalized = path.replace(os.sep, "/")
    return FileContext(
        path,
        is_rng_module=normalized.endswith("sim/random_streams.py"),
        is_units_module=normalized.endswith("repro/units.py"),
        in_gridftp_package="repro/gridftp/" in normalized,
    )


def lint_source(source, path="<string>", context=None, respect_pragmas=True):
    """Lint python source text; returns a list of Findings."""
    context = context or _context_for(path)
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as error:
        return [Finding(
            path=path, line=error.lineno or 1, col=error.offset or 0,
            code="GL000", message=f"syntax error: {error.msg}",
        )]
    findings = check_tree(tree, context)
    if respect_pragmas and findings:
        pragmas = parse_pragmas(source.splitlines())
        if pragmas:
            pragmas.expand_multiline(tree)
            findings = [
                f for f in findings
                if not pragmas.suppresses(f.line, f.code)
            ]
    return sorted(findings)


def lint_file(path, respect_pragmas=True):
    """Lint one file from disk."""
    try:
        with open(path, encoding="utf-8") as handle:
            source = handle.read()
    except (OSError, UnicodeDecodeError) as error:
        return [Finding(
            path=str(path), line=1, col=0, code="GL000",
            message=f"cannot read file: {error}",
        )]
    return lint_source(
        source, path=str(path), context=_context_for(str(path)),
        respect_pragmas=respect_pragmas,
    )


def lint_paths(paths, select=None, ignore=None, respect_pragmas=True):
    """Lint files and directories; returns sorted Findings.

    ``select``/``ignore`` are iterables of rule codes; ``select`` keeps
    only those codes, ``ignore`` drops them (GL000 parse errors always
    survive both).
    """
    select = set(select) if select else None
    ignore = set(ignore or ())
    findings = []
    for path in collect_files(paths):
        for finding in lint_file(path, respect_pragmas=respect_pragmas):
            if finding.code == "GL000":
                findings.append(finding)
            elif select is not None and finding.code not in select:
                continue
            elif finding.code in ignore:
                continue
            else:
                findings.append(finding)
    return sorted(findings)
