"""The ``repro-lint`` command line interface.

Usage::

    repro-lint src/                         # lint a tree
    repro-lint --format github src/ tests/  # annotate a PR
    repro-lint --select GL001,GL002 file.py
    repro-lint --list-rules

Exit codes: 0 clean, 1 findings reported, 2 usage error.
"""

from __future__ import annotations

import argparse
import sys

from repro.analysis.gridlint.engine import lint_paths
from repro.analysis.gridlint.formats import FORMATS, render
from repro.analysis.gridlint.rules import RULES

__all__ = ["main"]


def _codes(text):
    codes = {c.strip() for c in text.split(",") if c.strip()}
    unknown = codes - set(RULES)
    if unknown:
        raise argparse.ArgumentTypeError(
            f"unknown rule code(s): {', '.join(sorted(unknown))}"
        )
    return codes


def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description="Grid-aware lint: determinism, sim-time discipline "
                    "and unit safety for the repro codebase.",
    )
    parser.add_argument(
        "paths", nargs="*", help="files or directories to lint"
    )
    parser.add_argument(
        "--format", choices=sorted(FORMATS), default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--select", type=_codes, metavar="GLxxx[,GLyyy]",
        help="only report these rule codes",
    )
    parser.add_argument(
        "--ignore", type=_codes, metavar="GLxxx[,GLyyy]",
        help="skip these rule codes",
    )
    parser.add_argument(
        "--no-pragmas", action="store_true",
        help="report findings even where a pragma suppresses them",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the rule catalog and exit",
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        for code in sorted(RULES):
            print(f"{code}  {RULES[code]}")
        return 0
    if not args.paths:
        parser.error("no paths given (try: repro-lint src/)")

    findings = lint_paths(
        args.paths, select=args.select, ignore=args.ignore,
        respect_pragmas=not args.no_pragmas,
    )
    output = render(findings, format=args.format)
    if output:
        print(output)
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main())
