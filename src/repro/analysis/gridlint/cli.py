"""The ``repro-lint`` command line interface.

Usage::

    repro-lint src/                          # file-local + program rules
    repro-lint --cache src/                  # incremental (warm runs skip parsing)
    repro-lint --changed src/                # only report files changed vs origin/main
    repro-lint --format sarif --output lint.sarif src/
    repro-lint --update-baseline src/        # accept current findings
    repro-lint --list-rules

Exit codes: 0 clean, 1 findings reported, 2 usage error.
"""

from __future__ import annotations

import argparse
import os
import sys

from repro.analysis.gridlint.baseline import BASELINE_DEFAULT, Baseline
from repro.analysis.gridlint.engine import lint_paths
from repro.analysis.gridlint.formats import FORMATS, render
from repro.analysis.gridlint.gitdiff import changed_files
from repro.analysis.gridlint.program.cache import AnalysisCache
from repro.analysis.gridlint.program.driver import analyze_project
from repro.analysis.gridlint.rules import RULES

__all__ = ["main"]

#: Default on-disk cache location for ``--cache`` with no argument.
CACHE_DEFAULT = ".gridlint-cache.json"


def _codes(text):
    codes = {c.strip() for c in text.split(",") if c.strip()}
    unknown = codes - set(RULES)
    if unknown:
        raise argparse.ArgumentTypeError(
            f"unknown rule code(s): {', '.join(sorted(unknown))}"
        )
    return codes


def _build_parser():
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description="Grid-aware lint: determinism, sim-time discipline "
                    "and unit safety for the repro codebase.",
    )
    parser.add_argument(
        "paths", nargs="*", help="files or directories to lint"
    )
    parser.add_argument(
        "--format", choices=sorted(FORMATS), default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--output", metavar="FILE",
        help="write the report to FILE instead of stdout",
    )
    parser.add_argument(
        "--select", type=_codes, metavar="GLxxx[,GLyyy]",
        help="only report these rule codes",
    )
    parser.add_argument(
        "--ignore", type=_codes, metavar="GLxxx[,GLyyy]",
        help="skip these rule codes",
    )
    parser.add_argument(
        "--no-pragmas", action="store_true",
        help="report findings even where a pragma suppresses them",
    )
    parser.add_argument(
        "--no-program", action="store_true",
        help="file-local rules only; skip the whole-program pass "
             "(GL101-GL104)",
    )
    parser.add_argument(
        "--cache", nargs="?", const=CACHE_DEFAULT, default=None,
        metavar="PATH",
        help="incremental-analysis cache file "
             f"(default when flag given: {CACHE_DEFAULT})",
    )
    parser.add_argument(
        "--jobs", type=int, default=0, metavar="N",
        help="parser worker processes (0 = one per CPU)",
    )
    parser.add_argument(
        "--changed", action="store_true",
        help="only report findings in files changed vs. the merge "
             "base with origin/main (full run outside a git repo)",
    )
    parser.add_argument(
        "--baseline", default=None, metavar="PATH",
        help="baseline file of accepted findings "
             f"(default: {BASELINE_DEFAULT} when it exists)",
    )
    parser.add_argument(
        "--no-baseline", action="store_true",
        help="ignore any baseline file; report everything",
    )
    parser.add_argument(
        "--update-baseline", action="store_true",
        help="rewrite the baseline to accept all current findings",
    )
    parser.add_argument(
        "--stats", action="store_true",
        help="print cache/parse statistics to stderr",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the rule catalog and exit",
    )
    return parser


def _apply_select(findings, select, ignore):
    """select/ignore filtering; GL000 parse errors always survive."""
    ignore = set(ignore or ())
    out = []
    for finding in findings:
        if finding.code == "GL000":
            out.append(finding)
        elif select is not None and finding.code not in select:
            continue
        elif finding.code in ignore:
            continue
        else:
            out.append(finding)
    return out


def main(argv=None):
    parser = _build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        for code in sorted(RULES):
            print(f"{code}  {RULES[code]}")
        return 0
    if not args.paths:
        parser.error("no paths given (try: repro-lint src/)")

    if args.no_program and args.cache is None:
        # Classic file-local path: no model, no cache machinery.
        findings = lint_paths(
            args.paths, select=args.select, ignore=args.ignore,
            respect_pragmas=not args.no_pragmas,
        )
    else:
        cache = AnalysisCache(args.cache)
        findings, stats = analyze_project(
            args.paths,
            program=not args.no_program,
            cache=cache,
            jobs=args.jobs,
            respect_pragmas=not args.no_pragmas,
        )
        findings = _apply_select(findings, args.select, args.ignore)
        if args.stats:
            print(f"repro-lint: {stats.describe()}", file=sys.stderr)

    if args.update_baseline:
        path = args.baseline or BASELINE_DEFAULT
        Baseline.from_findings(findings).save(path)
        print(
            f"repro-lint: baseline written to {path} "
            f"({len(findings)} findings accepted)", file=sys.stderr,
        )
        return 0

    suppressed = 0
    if not args.no_baseline:
        baseline_path = args.baseline or BASELINE_DEFAULT
        # A missing baseline (not yet created) is simply no baseline;
        # a present-but-corrupt one is an error worth stopping for.
        if not os.path.exists(baseline_path):
            baseline_path = None
        if baseline_path is not None:
            try:
                baseline = Baseline.load(baseline_path)
            except (OSError, ValueError, TypeError) as error:
                parser.error(f"cannot load baseline: {error}")
            findings, suppressed = baseline.filter(findings)

    if args.changed:
        changed = changed_files()
        if changed is None:
            print(
                "repro-lint: --changed outside a git checkout; "
                "running on everything", file=sys.stderr,
            )
        else:
            findings = [
                f for f in findings
                if os.path.realpath(f.path) in changed
            ]

    output = render(findings, format=args.format)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(output)
            if output and not output.endswith("\n"):
                handle.write("\n")
    elif output:
        print(output)
    if suppressed and args.stats:
        print(
            f"repro-lint: {suppressed} baselined finding(s) suppressed",
            file=sys.stderr,
        )
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main())
