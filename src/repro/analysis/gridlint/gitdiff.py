"""``--changed`` support: files differing from the merge base.

Pre-commit hooks and CI PR jobs should not pay for a full-tree lint as
``src/`` grows.  ``changed_files()`` asks git for everything that
differs from ``merge-base(HEAD, origin/main)`` plus uncommitted and
untracked work, and returns absolute paths.  Outside a repository (or
when git itself is unavailable/broken) it returns ``None`` and callers
fall back to a full run — ``--changed`` must never *hide* findings
just because the environment is odd.

Note that in whole-program mode the project model is still built over
every file on the command line; only the *reported* findings are
restricted to changed files, so interprocedural findings against a
changed caller of an unchanged callee are still seen.
"""

from __future__ import annotations

import os
import subprocess

__all__ = ["changed_files"]

_GIT_TIMEOUT = 30.0


def _git(args: list[str], cwd: str | None = None) -> str | None:
    try:
        result = subprocess.run(
            ["git", *args], cwd=cwd, capture_output=True, text=True,
            timeout=_GIT_TIMEOUT,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    if result.returncode != 0:
        return None
    return result.stdout


def changed_files(cwd: str | None = None,
                  base_ref: str = "origin/main") -> set[str] | None:
    """Absolute paths changed vs. the merge base, or None outside git.

    Includes committed changes since ``merge-base(HEAD, base_ref)``,
    staged and unstaged modifications, and untracked files.  When the
    merge base cannot be resolved (e.g. no ``origin/main`` in a fresh
    clone) the committed-diff component degrades to the working-tree
    diff only rather than failing the whole mode.
    """
    toplevel = _git(["rev-parse", "--show-toplevel"], cwd=cwd)
    if toplevel is None:
        return None
    root = toplevel.strip()
    names: set[str] = set()
    merge_base = _git(["merge-base", "HEAD", base_ref], cwd=cwd)
    if merge_base is not None:
        committed = _git(
            ["diff", "--name-only", merge_base.strip(), "HEAD"], cwd=cwd
        )
        if committed:
            names.update(committed.splitlines())
    worktree = _git(["diff", "--name-only", "HEAD"], cwd=cwd)
    if worktree:
        names.update(worktree.splitlines())
    untracked = _git(
        ["ls-files", "--others", "--exclude-standard"], cwd=cwd
    )
    if untracked:
        names.update(untracked.splitlines())
    return {
        os.path.realpath(os.path.join(root, name))
        for name in sorted(names) if name.strip()
    }
