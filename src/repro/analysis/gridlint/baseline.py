"""Checked-in baseline/suppression file for gridlint findings.

A baseline lets a new rule land without blocking CI on legacy
findings: ``repro-lint --update-baseline`` records the current
findings, CI then only fails on *new* ones.  Matching is by
``(path, code)`` occurrence counts rather than line numbers, so
unrelated edits that shift lines do not resurrect baselined findings —
but adding one more violation of a baselined rule to a file *does*
fail (the count is exceeded).

File format (``.gridlint-baseline.json``)::

    {"version": 1,
     "suppressions": {"src/repro/foo.py::GL102": 2, ...}}
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Iterable

from repro.analysis.gridlint.findings import Finding

__all__ = ["BASELINE_DEFAULT", "Baseline"]

#: Conventional baseline location, loaded automatically when present.
BASELINE_DEFAULT = ".gridlint-baseline.json"


def _key(finding: Finding) -> str:
    path = finding.path.replace(os.sep, "/")
    if path.startswith("./"):
        path = path[2:]
    return f"{path}::{finding.code}"


@dataclass
class Baseline:
    """Occurrence-count suppressions keyed by ``path::code``."""

    suppressions: dict[str, int] = field(default_factory=dict)

    @classmethod
    def load(cls, path: str) -> "Baseline":
        """Read a baseline file; raises ValueError on a bad schema."""
        with open(path, encoding="utf-8") as handle:
            data = json.load(handle)
        if not isinstance(data, dict) or "suppressions" not in data:
            raise ValueError(f"{path}: not a gridlint baseline file")
        suppressions = data["suppressions"]
        if not isinstance(suppressions, dict):
            raise ValueError(f"{path}: malformed suppressions table")
        return cls({str(k): int(v) for k, v in suppressions.items()})

    @classmethod
    def from_findings(cls, findings: Iterable[Finding]) -> "Baseline":
        counts: dict[str, int] = {}
        for finding in findings:
            if finding.code == "GL000":
                continue  # parse errors are never baselined
            key = _key(finding)
            counts[key] = counts.get(key, 0) + 1
        return cls(counts)

    def save(self, path: str) -> None:
        payload = {
            "version": 1,
            "suppressions": dict(sorted(self.suppressions.items())),
        }
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=False)
            handle.write("\n")

    def filter(self, findings: Iterable[Finding],
               ) -> tuple[list[Finding], int]:
        """(unbaselined findings, suppressed count).

        Findings are consumed in sorted (line) order per key, so when a
        file holds more violations than the baseline allows, the ones
        reported are deterministic.
        """
        budget = dict(self.suppressions)
        kept: list[Finding] = []
        suppressed = 0
        for finding in sorted(findings):
            if finding.code == "GL000":
                kept.append(finding)
                continue
            key = _key(finding)
            remaining = budget.get(key, 0)
            if remaining > 0:
                budget[key] = remaining - 1
                suppressed += 1
            else:
                kept.append(finding)
        return kept, suppressed
