"""``python -m repro.analysis.gridlint`` entry point."""

import sys

from repro.analysis.gridlint.cli import main

sys.exit(main())
