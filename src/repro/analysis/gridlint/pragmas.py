"""``# gridlint: disable=...`` pragma parsing.

Two scopes:

* line pragma — a trailing comment on the offending line::

      t0 = time.time()  # gridlint: disable=GL001 -- CLI stopwatch, not sim

  suppresses the listed codes (comma-separated, or ``all``) for that
  physical line only.  Everything after the code list is a free-form
  justification; gridlint requires one in this codebase by convention.

* file pragma — anywhere in the file, on a line of its own::

      # gridlint: disable-file=GL002 -- this module IS the seeded RNG

  suppresses the listed codes for the whole file.

Findings are matched by the line number the AST reports for the
violating node, so put line pragmas on the first physical line of a
multi-line statement.
"""

from __future__ import annotations

import re

__all__ = ["PragmaMap", "parse_pragmas"]

_PRAGMA_RE = re.compile(
    r"#\s*gridlint:\s*(?P<scope>disable(?:-file)?)\s*=\s*"
    r"(?P<codes>all|GL\d{3}(?:\s*,\s*GL\d{3})*)",
)


class PragmaMap:
    """Suppression lookup: (line, code) -> suppressed?"""

    def __init__(self) -> None:
        self.file_codes: set[str] = set()
        self.file_all = False
        self.line_codes: dict[int, set[str]] = {}
        self.line_all: set[int] = set()

    def suppresses(self, line: int, code: str) -> bool:
        if self.file_all or code in self.file_codes:
            return True
        if line in self.line_all:
            return True
        return code in self.line_codes.get(line, ())

    def __bool__(self) -> bool:
        return bool(
            self.file_all or self.file_codes
            or self.line_all or self.line_codes
        )


def parse_pragmas(source_lines: list[str]) -> PragmaMap:
    """Scan raw source lines for gridlint pragmas."""
    pragmas = PragmaMap()
    for lineno, text in enumerate(source_lines, start=1):
        if "gridlint" not in text:
            continue
        match = _PRAGMA_RE.search(text)
        if match is None:
            continue
        codes = match.group("codes")
        file_scope = match.group("scope") == "disable-file"
        if codes == "all":
            if file_scope:
                pragmas.file_all = True
            else:
                pragmas.line_all.add(lineno)
            continue
        parsed = {c.strip() for c in codes.split(",")}
        if file_scope:
            pragmas.file_codes |= parsed
        else:
            pragmas.line_codes.setdefault(lineno, set()).update(parsed)
    return pragmas
