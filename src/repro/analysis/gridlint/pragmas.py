"""``# gridlint: disable=...`` pragma parsing.

Two scopes:

* line pragma — a trailing comment on the offending line::

      t0 = time.time()  # gridlint: disable=GL001 -- CLI stopwatch, not sim

  suppresses the listed codes (comma-separated, or ``all``) for that
  physical line only.  Everything after the code list is a free-form
  justification; gridlint requires one in this codebase by convention.

* file pragma — anywhere in the file, on a line of its own::

      # gridlint: disable-file=GL002 -- this module IS the seeded RNG

  suppresses the listed codes for the whole file.

Line pragmas cover multi-line statements: a pragma on the first
physical line of a multi-line call/expression also suppresses findings
the AST reports on its continuation lines (the engine expands spans via
:meth:`PragmaMap.expand_multiline` after parsing).  For compound
statements (``if``/``def``/...), the pragma covers the header up to
the first body statement, never the body itself.
"""

from __future__ import annotations

import ast
import re
from typing import Any

__all__ = ["PragmaMap", "parse_pragmas"]

_PRAGMA_RE = re.compile(
    r"#\s*gridlint:\s*(?P<scope>disable(?:-file)?)\s*=\s*"
    r"(?P<codes>all|GL\d{3}(?:\s*,\s*GL\d{3})*)",
)


class PragmaMap:
    """Suppression lookup: (line, code) -> suppressed?"""

    def __init__(self) -> None:
        self.file_codes: set[str] = set()
        self.file_all = False
        self.line_codes: dict[int, set[str]] = {}
        self.line_all: set[int] = set()

    def suppresses(self, line: int, code: str) -> bool:
        if self.file_all or code in self.file_codes:
            return True
        if line in self.line_all:
            return True
        return code in self.line_codes.get(line, ())

    def __bool__(self) -> bool:
        return bool(
            self.file_all or self.file_codes
            or self.line_all or self.line_codes
        )

    def expand_multiline(self, tree: ast.Module) -> None:
        """Extend line pragmas across their statement's physical span.

        A pragma sits on the *first* line of a statement; findings on a
        multi-line call/expression may be reported on any continuation
        line.  Simple statements expand over their whole span; compound
        statements (which own a ``body``) expand only over their header
        — up to the line before their first body statement — so a
        pragma on a ``def`` line never silences the function body.
        """
        if not (self.line_all or self.line_codes):
            return
        for node in ast.walk(tree):
            if not isinstance(node, ast.stmt):
                continue
            start = node.lineno
            if start not in self.line_all and \
                    start not in self.line_codes:
                continue
            end = node.end_lineno or start
            body = getattr(node, "body", None)
            if isinstance(body, list) and body:
                end = min(end, body[0].lineno - 1)
            for line in range(start + 1, end + 1):
                if start in self.line_all:
                    self.line_all.add(line)
                if start in self.line_codes:
                    self.line_codes.setdefault(line, set()).update(
                        self.line_codes[start]
                    )

    def as_dict(self) -> dict[str, Any]:
        """JSON-serialisable form (for the incremental cache)."""
        return {
            "file_all": self.file_all,
            "file_codes": sorted(self.file_codes),
            "line_all": sorted(self.line_all),
            "line_codes": {
                str(line): sorted(codes)
                for line, codes in self.line_codes.items()
            },
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "PragmaMap":
        pragmas = cls()
        pragmas.file_all = bool(data.get("file_all"))
        pragmas.file_codes = set(data.get("file_codes", ()))
        pragmas.line_all = set(data.get("line_all", ()))
        pragmas.line_codes = {
            int(line): set(codes)
            for line, codes in data.get("line_codes", {}).items()
        }
        return pragmas


def parse_pragmas(source_lines: list[str]) -> PragmaMap:
    """Scan raw source lines for gridlint pragmas."""
    pragmas = PragmaMap()
    for lineno, text in enumerate(source_lines, start=1):
        if "gridlint" not in text:
            continue
        match = _PRAGMA_RE.search(text)
        if match is None:
            continue
        codes = match.group("codes")
        file_scope = match.group("scope") == "disable-file"
        if codes == "all":
            if file_scope:
                pragmas.file_all = True
            else:
                pragmas.line_all.add(lineno)
            continue
        parsed = {c.strip() for c in codes.split(",")}
        if file_scope:
            pragmas.file_codes |= parsed
        else:
            pragmas.line_codes.setdefault(lineno, set()).update(parsed)
    return pragmas
