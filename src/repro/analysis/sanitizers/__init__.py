"""Runtime sanitizers: determinism, sim-time discipline, leak checks.

Three complementary nets over a running simulation (the static side of
the same concerns lives in :mod:`repro.analysis.gridlint`):

* :func:`check_determinism` — run a scenario twice from one seed and
  diff SHA-256 digests of the captured metric/span/event stream;
* :func:`attach_watchdog` / :func:`install_global_watchdog` — kernel
  step hooks asserting the clock is finite, monotonic, and never has
  queued events in its past (``pytest --sanitize`` arms this on every
  simulator the suite builds);
* :func:`check_leaks` — at simulation end, nothing may be half-open:
  no unfinished spans (an open ``*.transfer`` span is a transfer that
  neither completed nor aborted) and no stale queued events.
"""

from repro.analysis.sanitizers.determinism import (
    FAST_PATH_TOGGLES,
    DeterminismReport,
    Divergence,
    check_determinism,
    check_profile_neutrality,
    check_toggle_equivalence,
    run_traced,
    trace_digest,
)
from repro.analysis.sanitizers.leaks import Leak, LeakReport, check_leaks
from repro.analysis.sanitizers.watchdog import (
    GlobalWatchdog,
    SimTimeWatchdog,
    WatchdogError,
    WatchdogViolation,
    attach_watchdog,
    install_global_watchdog,
)

__all__ = [
    "FAST_PATH_TOGGLES",
    "DeterminismReport",
    "Divergence",
    "GlobalWatchdog",
    "Leak",
    "LeakReport",
    "SimTimeWatchdog",
    "WatchdogError",
    "WatchdogViolation",
    "attach_watchdog",
    "check_determinism",
    "check_leaks",
    "check_profile_neutrality",
    "check_toggle_equivalence",
    "install_global_watchdog",
    "run_traced",
    "trace_digest",
]
