"""``python -m repro.analysis.sanitizers`` — the determinism harness CLI."""

import sys

from repro.analysis.sanitizers.determinism import main

sys.exit(main())
