"""Sim-time discipline watchdog.

Hooks into the kernel's step hooks and verifies, after every processed
event, the invariants the reproduction's timing math depends on:

* the clock never runs backwards (monotonicity);
* the clock is always finite (a NaN/inf timestamp poisons every
  downstream transfer time and forecast);
* no queued event lies in the past (a negative effective delay).

Violations are recorded (and optionally raised) as
:class:`WatchdogViolation`; :func:`install_global_watchdog` arms every
simulator constructed afterwards, which is what ``pytest --sanitize``
uses to sweep the whole test suite.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.sim.errors import SimulationError
from repro.sim.kernel import Simulator

__all__ = [
    "GlobalWatchdog",
    "SimTimeWatchdog",
    "WatchdogError",
    "WatchdogViolation",
    "attach_watchdog",
    "install_global_watchdog",
]


class WatchdogError(SimulationError):
    """Raised (in strict mode) when a sim-time invariant breaks."""


@dataclass(frozen=True)
class WatchdogViolation:
    """One detected breach of a sim-time invariant."""

    kind: str
    time: float
    detail: str

    def __str__(self) -> str:
        return f"[{self.kind}] t={self.time!r}: {self.detail}"


class SimTimeWatchdog:
    """Watches one simulator via its step hooks.

    Parameters
    ----------
    sim:
        The simulator to watch.
    strict:
        When True, the first violation raises :class:`WatchdogError`
        immediately instead of only being recorded.
    """

    def __init__(self, sim, strict=False):
        self.sim = sim
        self.strict = bool(strict)
        self.violations = []
        self.steps_checked = 0
        self._last_now = sim.now
        self._hook = sim.add_step_hook(self._check)
        self._detached = False

    def __repr__(self):
        state = "detached" if self._detached else "armed"
        return (
            f"<SimTimeWatchdog {state}: {self.steps_checked} steps, "
            f"{len(self.violations)} violations>"
        )

    @property
    def ok(self):
        return not self.violations

    def detach(self):
        """Stop watching (idempotent)."""
        if not self._detached:
            self.sim.remove_step_hook(self._hook)
            self._detached = True

    def _record(self, kind, detail):
        violation = WatchdogViolation(
            kind=kind, time=self.sim.now, detail=detail
        )
        self.violations.append(violation)
        if self.strict:
            raise WatchdogError(str(violation))

    def _check(self, sim, event):
        self.steps_checked += 1
        now = sim.now
        if not math.isfinite(now):
            self._record(
                "non-finite-clock",
                f"clock became {now!r} after {type(event).__name__}",
            )
        elif now < self._last_now:
            self._record(
                "clock-regression",
                f"clock moved backwards {self._last_now!r} -> {now!r} "
                f"processing {type(event).__name__}",
            )
        head = sim.peek()
        if head < now:
            self._record(
                "past-event-queued",
                f"queue head at t={head!r} lies before now={now!r}",
            )
        self._last_now = now


def attach_watchdog(sim, strict=False):
    """Arm a :class:`SimTimeWatchdog` on ``sim`` and return it."""
    return SimTimeWatchdog(sim, strict=strict)


class GlobalWatchdog:
    """Arms a watchdog on every Simulator constructed while installed.

    Used by ``pytest --sanitize``::

        guard = install_global_watchdog()
        try:
            ... run code that builds simulators ...
        finally:
            guard.uninstall()
        assert not guard.violations()
    """

    def __init__(self, strict=False):
        self.strict = bool(strict)
        self.watchdogs = []
        self._original_init = None

    def install(self):
        if self._original_init is not None:
            raise RuntimeError("global watchdog already installed")
        self._original_init = Simulator.__init__
        original = self._original_init
        guard = self

        def watched_init(sim, *args, **kwargs):
            original(sim, *args, **kwargs)
            guard.watchdogs.append(
                SimTimeWatchdog(sim, strict=guard.strict)
            )

        Simulator.__init__ = watched_init
        return self

    def uninstall(self):
        if self._original_init is None:
            return
        Simulator.__init__ = self._original_init
        self._original_init = None
        for watchdog in self.watchdogs:
            watchdog.detach()

    def violations(self):
        """All violations across every watched simulator."""
        out = []
        for watchdog in self.watchdogs:
            out.extend(watchdog.violations)
        return out

    def __enter__(self):
        return self.install()

    def __exit__(self, exc_type, exc, tb):
        self.uninstall()
        return False


def install_global_watchdog(strict=False):
    """Install and return a :class:`GlobalWatchdog`."""
    return GlobalWatchdog(strict=strict).install()
