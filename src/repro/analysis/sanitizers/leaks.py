"""Resource-leak check at simulation end.

A finished simulation should have nothing half-open: every tracing span
finished (a still-open ``<protocol>.transfer`` span is a transfer that
never completed nor aborted cleanly) and no events left on the queue
below the stop horizon.  Leaks do not crash a run — they silently drop
rows from the exhibits, which is worse.

Usage::

    report = check_leaks(grid)       # or a Simulator / Observability
    assert report.ok, report.describe()
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Leak", "LeakReport", "check_leaks"]


@dataclass(frozen=True)
class Leak:
    """One resource left open at simulation end."""

    kind: str
    name: str
    detail: str

    def __str__(self) -> str:
        return f"[{self.kind}] {self.name}: {self.detail}"


class LeakReport:
    """Outcome of one leak sweep."""

    def __init__(self, leaks):
        self.leaks = list(leaks)

    def __repr__(self):
        state = "clean" if self.ok else f"{len(self.leaks)} leaks"
        return f"<LeakReport {state}>"

    @property
    def ok(self):
        return not self.leaks

    def describe(self):
        if self.ok:
            return "no leaks"
        return "\n".join(str(leak) for leak in self.leaks)


def _resolve(target):
    """Accept a DataGrid, Simulator or Observability."""
    sim = None
    obs = getattr(target, "obs", None)
    if obs is not None:
        # DataGrid or Simulator.
        sim = getattr(target, "sim", target)
    else:
        obs = target
    return sim, obs


def check_leaks(target):
    """Sweep for unclosed spans/transfers and stale queued events.

    ``target`` may be a :class:`~repro.grid.DataGrid`, a
    :class:`~repro.sim.Simulator` or an
    :class:`~repro.obs.Observability`.
    """
    sim, obs = _resolve(target)
    leaks = []

    tracer = getattr(obs, "tracer", None)
    if tracer is not None and getattr(tracer, "enabled", False):
        for span_id in sorted(tracer.open_spans):
            span = tracer.open_spans[span_id]
            kind = (
                "unclosed-transfer"
                if span.name.endswith(".transfer")
                else "unclosed-span"
            )
            leaks.append(Leak(
                kind=kind, name=span.name,
                detail=(
                    f"span #{span.span_id} opened at t={span.start:.6g} "
                    "was never finished"
                ),
            ))

    if sim is not None and getattr(sim, "peek", None) is not None:
        pending = sim.peek()
        if pending < sim.now:
            leaks.append(Leak(
                kind="stale-event", name="queue",
                detail=(
                    f"queue head at t={pending!r} predates the clock "
                    f"(now={sim.now!r})"
                ),
            ))

    if sim is not None and getattr(sim, "_queue", None) is not None:
        # Guard timers (fault injectors, attempt timeouts, chaos
        # reverts) tag their timeout events with ``guard_tag``.  One
        # still queued and not cancelled at sweep time is a guard that
        # was never disarmed — it silently holds the horizon open.
        for entry in sim._queue:
            event = entry[3]
            tag = getattr(event, "guard_tag", None)
            if tag is not None and not event.cancelled:
                leaks.append(Leak(
                    kind="armed-guard", name=tag,
                    detail=(
                        f"guard timer scheduled for t={entry[0]:.6g} "
                        "was never disarmed"
                    ),
                ))

    return LeakReport(leaks)
