"""The determinism harness: same seed, same trace — or fail loudly.

Every exhibit in the paper reproduction must be a pure function of its
root seed.  The harness runs a scenario twice (or more) under the
observability capture layer (PR 1), canonicalises each run's merged
metric/span/event stream, and compares SHA-256 digests.  Any divergence
— a stray wall-clock read, an unseeded RNG, ordering nondeterminism —
shows up as differing digests, and the report pinpoints the first
diverging record.

Programmatic use::

    from repro.analysis.sanitizers import check_determinism
    report = check_determinism(lambda: run_table1(seed=0, file_size_mb=64))
    assert report.ok, report.describe()

Command line (CI's sanitize job)::

    python -m repro.analysis.sanitizers.determinism fig3 table1 --quick
"""

from __future__ import annotations

import hashlib
import json
import re
from dataclasses import dataclass, field

from repro.obs import capture

__all__ = [
    "FAST_PATH_TOGGLES",
    "DeterminismReport",
    "Divergence",
    "check_determinism",
    "check_profile_neutrality",
    "check_toggle_equivalence",
    "run_traced",
    "trace_digest",
]

#: The fast-path feature toggles and their (optimised, legacy) values.
#: The optimised side is every variable's default; the legacy side
#: re-selects the original reference implementations.  All three are
#: read at simulator/network/sensor construction, so flipping them
#: between runs is a complete A/B switch.
FAST_PATH_TOGGLES: dict[str, tuple[str, str]] = {
    "REPRO_EVENT_QUEUE": ("calendar", "heap"),
    "REPRO_FAIRSHARE": ("incremental", "oracle"),
    "REPRO_SENSOR_DRIVER": ("batch", "process"),
}

#: CPython reprs embed addresses (``<Host src at 0x7f...>``) that differ
#: run-to-run without being real nondeterminism; scrub them.
_ADDRESS_RE = re.compile(r" at 0x[0-9a-fA-F]+")


def _canonical(record):
    """Stable JSON text for one trace record."""
    text = json.dumps(record, sort_keys=True, default=repr)
    return _ADDRESS_RE.sub("", text)


def trace_digest(records):
    """SHA-256 hex digest over a canonicalised record stream."""
    digest = hashlib.sha256()
    for record in records:
        digest.update(_canonical(record).encode())
        digest.update(b"\n")
    return digest.hexdigest()


def run_traced(scenario):
    """Run ``scenario()`` under capture; returns (result, records)."""
    with capture() as collector:
        result = scenario()
    return result, collector.records()


@dataclass(frozen=True)
class Divergence:
    """First difference between two same-seed runs."""

    run_a: int
    run_b: int
    index: int
    record_a: str | None
    record_b: str | None

    def __str__(self) -> str:
        return (
            f"runs {self.run_a} and {self.run_b} diverge at record "
            f"#{self.index}:\n  run {self.run_a}: {self.record_a!r}\n"
            f"  run {self.run_b}: {self.record_b!r}"
        )


@dataclass
class DeterminismReport:
    """Digest comparison across N same-seed runs of one scenario."""

    name: str
    digests: list = field(default_factory=list)
    record_counts: list = field(default_factory=list)
    divergence: Divergence | None = None

    @property
    def ok(self):
        return len(set(self.digests)) <= 1

    @property
    def runs(self):
        return len(self.digests)

    def describe(self):
        if self.ok:
            return (
                f"{self.name}: deterministic over {self.runs} runs "
                f"(digest {self.digests[0][:12]}..., "
                f"{self.record_counts[0]} records)"
                if self.digests else f"{self.name}: no runs"
            )
        lines = [f"{self.name}: NONDETERMINISTIC"]
        for index, (digest, count) in enumerate(
            zip(self.digests, self.record_counts)
        ):
            lines.append(
                f"  run {index}: digest {digest[:16]}... "
                f"({count} records)"
            )
        if self.divergence is not None:
            lines.append(str(self.divergence))
        return "\n".join(lines)


def _first_divergence(run_a, run_b, records_a, records_b):
    canon_a = [_canonical(r) for r in records_a]
    canon_b = [_canonical(r) for r in records_b]
    limit = max(len(canon_a), len(canon_b))
    for index in range(limit):
        a = canon_a[index] if index < len(canon_a) else None
        b = canon_b[index] if index < len(canon_b) else None
        if a != b:
            return Divergence(
                run_a=run_a, run_b=run_b, index=index,
                record_a=a, record_b=b,
            )
    return None


def check_determinism(scenario, runs=2, name="scenario"):
    """Run ``scenario()`` ``runs`` times and compare trace digests.

    ``scenario`` must be a zero-argument callable that seeds everything
    itself (the point is that nothing *outside* it may influence the
    trace).  Returns a :class:`DeterminismReport`.
    """
    if runs < 2:
        raise ValueError("need at least 2 runs to compare")
    report = DeterminismReport(name=name)
    traces = []
    for _ in range(runs):
        _, records = run_traced(scenario)
        traces.append(records)
        report.digests.append(trace_digest(records))
        report.record_counts.append(len(records))
    if not report.ok:
        baseline = report.digests[0]
        for index in range(1, runs):
            if report.digests[index] != baseline:
                report.divergence = _first_divergence(
                    0, index, traces[0], traces[index]
                )
                break
    return report


def check_profile_neutrality(scenario, name="scenario"):
    """Digest one plain run against one kernel-profiled run.

    The perf layer's contract (see :mod:`repro.obs.perf`) is that
    profiling is invisible to the simulation: attaching the kernel
    profiler must not change the captured metric/span/event stream by a
    single byte.  Returns a :class:`DeterminismReport` whose two digests
    are the unprofiled and profiled runs.
    """
    from repro.obs.perf import profile

    report = DeterminismReport(name=f"{name} [profile off/on]")
    _, plain = run_traced(scenario)
    with profile():
        _, profiled = run_traced(scenario)
    for records in (plain, profiled):
        report.digests.append(trace_digest(records))
        report.record_counts.append(len(records))
    if not report.ok:
        report.divergence = _first_divergence(0, 1, plain, profiled)
    return report


def _run_with_env(scenario, overrides):
    """``run_traced(scenario)`` with env vars overridden for the run."""
    import os

    saved = {key: os.environ.get(key) for key in overrides}
    os.environ.update(overrides)
    try:
        return run_traced(scenario)
    finally:
        for key, value in saved.items():
            if value is None:
                os.environ.pop(key, None)
            else:
                os.environ[key] = value


def check_toggle_equivalence(scenario, name="scenario"):
    """Digest an all-optimised run against an all-legacy run.

    The fast-path contract (see ``docs/performance.md``) is that the
    calendar event queue, the incremental fair-share solver and the
    batched sensor driver change *nothing* observable: with every
    :data:`FAST_PATH_TOGGLES` variable flipped to its legacy value, the
    same-seed trace must be byte-identical.  Returns a
    :class:`DeterminismReport` whose two digests are the optimised and
    legacy runs.
    """
    report = DeterminismReport(name=f"{name} [fast-path on/off]")
    optimised = {key: on for key, (on, _off) in FAST_PATH_TOGGLES.items()}
    legacy = {key: off for key, (_on, off) in FAST_PATH_TOGGLES.items()}
    _, fast = _run_with_env(scenario, optimised)
    _, slow = _run_with_env(scenario, legacy)
    for records in (fast, slow):
        report.digests.append(trace_digest(records))
        report.record_counts.append(len(records))
    if not report.ok:
        report.divergence = _first_divergence(0, 1, fast, slow)
    return report


def main(argv=None):
    """Run the harness over named experiments (CI's sanitize gate)."""
    import argparse

    from repro.experiments.runner import EXPERIMENTS

    parser = argparse.ArgumentParser(
        description="Verify experiments are deterministic: run each "
                    "twice from one seed and diff trace digests.",
    )
    parser.add_argument(
        "experiments", nargs="*", default=["fig3", "table1"],
        help="experiment ids (default: fig3 table1)",
    )
    parser.add_argument("--quick", action="store_true")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--runs", type=int, default=2)
    parser.add_argument(
        "--profile", action="store_true",
        help="also prove kernel-profiler neutrality: digest a plain "
             "run against a profiled run of each experiment",
    )
    parser.add_argument(
        "--ab-toggles", action="store_true",
        help="also prove fast-path equivalence: digest an all-optimised "
             "run (calendar queue, incremental solver, batched sensors) "
             "against an all-legacy run of each experiment",
    )
    args = parser.parse_args(argv)

    unknown = [e for e in args.experiments if e not in EXPERIMENTS]
    if unknown:
        parser.error(f"unknown experiment(s): {', '.join(unknown)}")

    failed = 0
    for experiment_id in args.experiments:
        runner = EXPERIMENTS[experiment_id]
        report = check_determinism(
            lambda: runner(args.quick, args.seed),
            runs=args.runs, name=experiment_id,
        )
        print(report.describe())
        if not report.ok:
            failed += 1
        if args.profile:
            neutrality = check_profile_neutrality(
                lambda: runner(args.quick, args.seed),
                name=experiment_id,
            )
            print(neutrality.describe())
            if not neutrality.ok:
                failed += 1
        if args.ab_toggles:
            equivalence = check_toggle_equivalence(
                lambda: runner(args.quick, args.seed),
                name=experiment_id,
            )
            print(equivalence.describe())
            if not equivalence.ok:
                failed += 1
    return 1 if failed else 0


if __name__ == "__main__":
    import sys

    sys.exit(main())
