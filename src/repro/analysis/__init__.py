"""Static analysis and runtime sanitizers guarding reproducibility.

The paper's exhibits (Table 1, Figs. 3-5) are only credible because the
simulation is *deterministic*: every transfer time, NWS forecast and
Equation (1) score must come out identical run-to-run.  A stray
``time.time()`` call, an unseeded ``random`` draw or a Mbps/MiB
mix-up silently destroys that property without failing any functional
test.  This package is the correctness net that lets refactoring and
performance PRs move aggressively without breaking the figures:

* :mod:`repro.analysis.gridlint` — a stdlib-``ast`` static checker with
  codebase-specific rules (GL001-GL006): wall-clock use, rogue RNGs,
  unordered-set iteration, inline unit arithmetic, mutable default
  arguments and swallowed exceptions.  Run it with ``repro-lint`` or
  ``python -m repro.analysis.gridlint src/``.
* :mod:`repro.analysis.sanitizers` — runtime checks: a determinism
  harness that runs a scenario twice from one seed and diffs event-trace
  digests, a sim-time monotonicity watchdog hooked into the kernel, and
  a resource-leak check for unclosed spans/transfers at simulation end.

See ``docs/static_analysis.md`` for the rule catalog and rationale.
"""

from repro.analysis.gridlint import Finding, lint_paths
from repro.analysis.sanitizers import (
    DeterminismReport,
    LeakReport,
    SimTimeWatchdog,
    attach_watchdog,
    check_determinism,
    check_leaks,
    trace_digest,
)

__all__ = [
    "DeterminismReport",
    "Finding",
    "LeakReport",
    "SimTimeWatchdog",
    "attach_watchdog",
    "check_determinism",
    "check_leaks",
    "lint_paths",
    "trace_digest",
]
