"""Unit conventions and conversion helpers.

Internal conventions used throughout the reproduction:

* time      — seconds (float)
* data size — bytes (float; fractional bytes are fine at flow granularity)
* data rate — bytes per second

The paper quotes link speeds in Mbps (megabits/s, SI) and file sizes in
MB (2**20 bytes, as `globus-url-copy` reports them); these helpers keep
those conversions in one place.
"""

#: Bytes in a kibibyte / mebibyte / gibibyte (file sizes).
KiB = 1024.0
MiB = 1024.0 * KiB
GiB = 1024.0 * MiB

#: Bits per second in SI kilo/mega/giga (link speeds).
_BITS_PER_BYTE = 8.0


def mbit_per_s(mbps: float) -> float:
    """Convert a link speed in Mbps (SI megabits/s) to bytes/s."""
    return mbps * 1e6 / _BITS_PER_BYTE


def gbit_per_s(gbps: float) -> float:
    """Convert a link speed in Gbps to bytes/s."""
    return gbps * 1e9 / _BITS_PER_BYTE


def to_mbit_per_s(bytes_per_s: float) -> float:
    """Convert bytes/s back to Mbps for reporting."""
    return bytes_per_s * _BITS_PER_BYTE / 1e6


def megabytes(n: float) -> float:
    """File size of ``n`` MB (2**20 bytes) in bytes."""
    return n * MiB


def to_megabytes(nbytes: float) -> float:
    """Bytes to MB (2**20) for reporting."""
    return nbytes / MiB


def milliseconds(ms: float) -> float:
    """Convert milliseconds to seconds."""
    return ms / 1e3


#: Dimension annotations for the helpers above, consumed by gridlint's
#: GL102 unit-dimension inference (see
#: :mod:`repro.analysis.gridlint.program.dimensions`).  Maps helper
#: name -> (parameter dimensions, return dimension).  Dimension names
#: are the analysis' canonical vocabulary: ``seconds``,
#: ``milliseconds``, ``bytes``, ``megabytes``, ``bytes_per_s``,
#: ``mbps``, ``gbps``.
DIMENSIONS: dict[str, tuple[tuple[str, ...], str]] = {
    "mbit_per_s": (("mbps",), "bytes_per_s"),
    "gbit_per_s": (("gbps",), "bytes_per_s"),
    "to_mbit_per_s": (("bytes_per_s",), "mbps"),
    "megabytes": (("megabytes",), "bytes"),
    "to_megabytes": (("bytes",), "megabytes"),
    "milliseconds": (("milliseconds",), "seconds"),
}

#: Constants above that denote byte quantities (``n * MiB`` is bytes).
BYTE_CONSTANTS: tuple[str, ...] = ("KiB", "MiB", "GiB")
