"""The DataGrid container: one object wiring the whole simulated testbed.

A :class:`DataGrid` owns the simulator, the network topology, the flow
network, and the set of :class:`Host` machines.  Services (FTP/GridFTP
servers, replica catalog, NWS, MDS, the replica selection server) attach
to it.  Experiments build a grid, attach services, and run processes.
"""

from repro.hosts import Host
from repro.network import FlowNetwork, Router, TCPModel, Topology
from repro.sim import Simulator

__all__ = ["DataGrid"]


class DataGrid:
    """A simulated Data Grid: machines, network, and attached services."""

    def __init__(self, sim=None, seed=0, observe=None):
        self.sim = sim or Simulator(seed=seed, observe=observe)
        self.topology = Topology()
        self.router = Router(self.topology)
        self.network = FlowNetwork(self.sim, self.topology, self.router)
        self.tcp_model = TCPModel()
        self.hosts = {}
        #: Attached services, keyed by (host_name, service_name).
        self.services = {}

    def __repr__(self):
        return (
            f"<DataGrid {len(self.hosts)} hosts, "
            f"{len(self.topology.links())} links>"
        )

    @property
    def obs(self):
        """The simulator's observability bundle."""
        return self.sim.obs

    # -- construction -----------------------------------------------------

    def add_host(self, name, site, **host_kwargs):
        """Add a machine: a topology node plus a :class:`Host` model."""
        if name in self.hosts:
            raise ValueError(f"duplicate host {name!r}")
        self.topology.add_node(name, site=site)
        host = Host(self.sim, name, site, **host_kwargs)
        self.hosts[name] = host
        return host

    def add_router(self, name, site=None):
        """Add a pure forwarding node (switch / backbone router)."""
        return self.topology.add_node(name, site=site, is_router=True)

    def connect(self, a, b, capacity, latency=0.0, loss_rate=0.0):
        """Full-duplex link between two nodes."""
        return self.topology.add_duplex_link(
            a, b, capacity, latency=latency, loss_rate=loss_rate
        )

    # -- lookup -------------------------------------------------------------

    def host(self, name):
        """The :class:`Host` for ``name`` (KeyError if absent)."""
        return self.hosts[name]

    def host_names(self):
        return sorted(self.hosts)

    def site_hosts(self, site):
        """Hosts belonging to a site, sorted by name."""
        return sorted(
            (h for h in self.hosts.values() if h.site == site),
            key=lambda h: h.name,
        )

    def path(self, src, dst):
        """Routed network path between two hosts."""
        return self.router.path(src, dst)

    # -- services ---------------------------------------------------------------

    def register_service(self, host_name, service_name, service):
        """Attach a service instance to a host."""
        if host_name not in self.hosts:
            raise KeyError(f"unknown host {host_name!r}")
        key = (host_name, service_name)
        if key in self.services:
            raise ValueError(
                f"service {service_name!r} already registered on {host_name}"
            )
        self.services[key] = service
        return service

    def service(self, host_name, service_name):
        """Look up a service (KeyError if absent)."""
        return self.services[(host_name, service_name)]

    def has_service(self, host_name, service_name):
        return (host_name, service_name) in self.services

    def run(self, until=None):
        """Convenience passthrough to the simulator."""
        return self.sim.run(until=until)
