"""repro.integrity — end-to-end transfer integrity.

The paper's cost model picks the *fastest* replica and assumes every
replica is *correct*; this package drops that assumption.  Four pieces
(see ``docs/integrity.md``):

* :class:`ChecksumManifest` — per-block checksums computed when a
  logical file is published, attached to its catalog entry;
* :class:`VerifiedRanges` — merge of restart markers and verification
  results; resume decisions come only from verified bytes, and ranges
  verified against one replica version are never trusted for another;
* :class:`ReplicaHealthRegistry` — verification failures, quarantine
  past a threshold, host-outage windows, and ``retry_after`` hints;
* :class:`ReplicaRepairService` — background re-replication of
  quarantined copies from a verified source, with a re-admission audit.

The GridFTP client verifies received blocks against the manifest
(:class:`~repro.gridftp.errors.CorruptBlockError` on mismatch) and the
reliable transfer layer resumes from the last verified byte on any
surviving replica.
"""

from repro.integrity.health import QuarantineRecord, ReplicaHealthRegistry
from repro.integrity.manifest import (
    ChecksumManifest,
    DEFAULT_BLOCK_BYTES,
)
from repro.integrity.ranges import VerifiedRanges, plan_next_fetch
from repro.integrity.repair import ReplicaRepairService

__all__ = [
    "ChecksumManifest",
    "DEFAULT_BLOCK_BYTES",
    "QuarantineRecord",
    "ReplicaHealthRegistry",
    "ReplicaRepairService",
    "VerifiedRanges",
    "plan_next_fetch",
]
