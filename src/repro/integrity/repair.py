"""Quarantine-driven replica repair.

A background process that heals the damage the health registry has
recorded: for every quarantined replica it finds a *verified* source
copy (full manifest audit, host up, not itself quarantined), rewrites
the quarantined physical file with a server-to-server GridFTP transfer,
audits the result, and — only on a clean audit — re-admits the replica
into selection.  A replica with no verifiable source stays quarantined
and is retried next cycle; the catalog never loses a location, so a
window where every copy is bad heals itself as soon as one source is
repaired or restored.
"""

import logging

from repro.gridftp.errors import TransferError
from repro.sim import Interrupt

__all__ = ["ReplicaRepairService"]

logger = logging.getLogger("repro.integrity.repair")


class ReplicaRepairService:
    """Periodic repair sweep over the health registry's quarantine list.

    Parameters
    ----------
    grid:
        The data grid.
    catalog:
        The :class:`~repro.replica.catalog.ReplicaCatalog` (for
        manifests and locations).
    manager:
        A :class:`~repro.replica.manager.ReplicaManager`; its GridFTP
        client steers the third-party repair transfers.
    health:
        The :class:`~repro.integrity.health.ReplicaHealthRegistry`.
    period:
        Seconds between repair sweeps.
    parallelism:
        Parallel streams for repair transfers (None = stream mode).
    """

    def __init__(self, grid, catalog, manager, health, period=60.0,
                 parallelism=None):
        if period <= 0:
            raise ValueError("period must be positive")
        self.grid = grid
        self.catalog = catalog
        self.manager = manager
        self.health = health
        self.period = float(period)
        self.parallelism = parallelism
        #: (logical_name, host_name, source_host) per completed repair.
        self.repairs = []
        self.failed_attempts = 0
        self.process = None
        self._pending_timer = None

    def __repr__(self):
        return (
            f"<ReplicaRepairService every {self.period:g}s, "
            f"{len(self.repairs)} repairs>"
        )

    # -- lifecycle ---------------------------------------------------------

    def start(self):
        """Launch the periodic sweep as a simulation process."""
        if self.process is not None and self.process.is_alive:
            raise RuntimeError("repair service already running")
        self.process = self.grid.sim.process(self._driver())
        return self

    def stop(self):
        """Halt the sweep and cancel its pending wake-up timer."""
        if self.process is not None and self.process.is_alive:
            self.process.interrupt(cause="repair-stop")
        timer = self._pending_timer
        if timer is not None and not timer.processed \
                and not timer.cancelled:
            timer.cancel()
        self._pending_timer = None

    def _driver(self):
        while True:
            timer = self.grid.sim.timeout(self.period)
            timer.guard_tag = "integrity-repair-period"
            self._pending_timer = timer
            try:
                yield timer
            except Interrupt:
                if not timer.processed and not timer.cancelled:
                    timer.cancel()
                return
            finally:
                self._pending_timer = None
            yield from self.run_once()

    # -- one sweep ---------------------------------------------------------

    def run_once(self):
        """Attempt to repair every currently quarantined replica.

        A generator returning the list of repairs completed this sweep.
        """
        completed = []
        for record in self.health.quarantined_replicas():
            repaired = yield from self._repair_one(record)
            if repaired:
                completed.append(record)
        return completed

    def _verified_source(self, logical_name, manifest, exclude):
        """A replica host holding a full, clean, current copy."""
        for entry in self.catalog.locations(logical_name):
            host_name = entry.host_name
            if host_name == exclude:
                continue
            if self.health.is_quarantined(logical_name, host_name):
                continue
            host = self.grid.hosts.get(host_name)
            if host is None or not host.is_up:
                continue
            if entry.physical_name not in host.filesystem:
                continue
            stored = host.filesystem.stored(entry.physical_name)
            if manifest.audit(stored):
                return entry
        return None

    def _repair_one(self, record):
        logical_name, bad_host = record.logical_name, record.host_name
        try:
            lfn = self.catalog.logical_file(logical_name)
        except KeyError:
            return False
        manifest = getattr(lfn, "manifest", None)
        if manifest is None:
            return False
        entry = next(
            (e for e in self.catalog.locations(logical_name)
             if e.host_name == bad_host), None,
        )
        if entry is None:
            # The replica was deleted while quarantined; nothing to heal.
            self.health.readmit(logical_name, bad_host)
            return False
        target = self.grid.hosts.get(bad_host)
        if target is None or not target.is_up:
            return False
        source = self._verified_source(logical_name, manifest, bad_host)
        if source is None:
            logger.warning(
                "no verified source to repair %r at %s this sweep",
                logical_name, bad_host,
            )
            return False

        obs = self.grid.obs
        span = obs.tracer.start_span(
            "integrity.repair", logical_name=logical_name,
            host=bad_host, source=source.host_name,
        )
        # No pre-delete: the third-party transfer replaces the bad
        # copy atomically on completion, so the replica stays fetchable
        # (and quarantined) while the repair is in flight.
        fs = target.filesystem
        try:
            yield from self.manager.client.third_party(
                source.host_name, bad_host, source.physical_name,
                dst_name=entry.physical_name,
                parallelism=self.parallelism,
            )
        except TransferError as error:
            self.failed_attempts += 1
            span.set(error=type(error).__name__)
            span.finish()
            logger.warning(
                "repair transfer of %r to %s failed: %s", logical_name,
                bad_host, error,
            )
            return False
        stored = fs.stored(entry.physical_name)
        if not manifest.audit(stored):
            self.failed_attempts += 1
            span.set(error="audit-failed")
            span.finish()
            logger.error(
                "repaired copy of %r at %s failed its audit",
                logical_name, bad_host,
            )
            return False
        self.health.readmit(logical_name, bad_host)
        self.repairs.append((logical_name, bad_host, source.host_name))
        span.set(audited=True)
        span.finish()
        if obs.enabled:
            obs.metrics.counter("integrity.repairs").inc()
            obs.events.emit(
                "integrity.repair", logical_name=logical_name,
                host=bad_host, source=source.host_name,
            )
        logger.info(
            "repaired %r at %s from %s", logical_name, bad_host,
            source.host_name,
        )
        return True
