"""The replica health registry: verification failures -> quarantine.

Vazhkudai, Tuecke and Foster note that replica selection must react to
storage-system *state*, not just bandwidth; this registry is that
state.  Every manifest verification failure against a replica is
recorded here, and a replica that keeps failing is *quarantined*: the
selection server and the replication policy skip it, the repair service
re-replicates it from a verified source, and only a clean audit
re-admits it.

The registry also tracks host outages (fed by the chaos engine's
``host_crash`` action), so :meth:`retry_after` can tell a client with
no live replica how long until the shortest quarantine or outage window
ends — a machine-readable hint that beats blind exponential backoff.
"""

import logging

__all__ = ["QuarantineRecord", "ReplicaHealthRegistry"]

logger = logging.getLogger("repro.integrity.health")


class QuarantineRecord:
    """One quarantined replica: why, since when, and until when."""

    __slots__ = ("logical_name", "host_name", "reason", "since", "until")

    def __init__(self, logical_name, host_name, reason, since, until):
        self.logical_name = logical_name
        self.host_name = host_name
        self.reason = reason
        self.since = float(since)
        self.until = float(until)

    def __repr__(self):
        return (
            f"<QuarantineRecord {self.logical_name!r} @ "
            f"{self.host_name} ({self.reason}) until {self.until:g}>"
        )

    def remaining(self, now):
        return max(0.0, self.until - now)


class ReplicaHealthRegistry:
    """Tracks per-replica verification failures, quarantines repeat
    offenders, and answers retry-window queries.

    Parameters
    ----------
    grid:
        The :class:`~repro.grid.DataGrid` (for the clock and obs).
    failure_threshold:
        Verification failures after which a replica is quarantined.
    quarantine_seconds:
        Nominal quarantine window; the repair service usually re-admits
        a replica well before it lapses, but if repair never succeeds
        the quarantine expires and selection may probe the replica
        again (it re-quarantines instantly if still corrupt).
    """

    def __init__(self, grid, failure_threshold=2,
                 quarantine_seconds=600.0):
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        if quarantine_seconds <= 0:
            raise ValueError("quarantine_seconds must be positive")
        self.grid = grid
        self.failure_threshold = int(failure_threshold)
        self.quarantine_seconds = float(quarantine_seconds)
        #: (logical_name, host_name) -> consecutive failure count.
        self._failures = {}
        #: (logical_name, host_name) -> QuarantineRecord.
        self._quarantined = {}
        #: host_name -> expected outage end (None = unknown).
        self._outages = {}
        self.failures_recorded = 0
        self.quarantines_total = 0
        self.readmissions_total = 0

    def __repr__(self):
        return (
            f"<ReplicaHealthRegistry {len(self._quarantined)} "
            f"quarantined, {self.failures_recorded} failures>"
        )

    @property
    def _now(self):
        return self.grid.sim.now

    # -- verification failures --------------------------------------------

    def record_failure(self, logical_name, host_name, reason="corrupt"):
        """Note one verification failure; quarantine past the threshold.

        Returns True when this failure tipped the replica into
        quarantine.
        """
        key = (logical_name, host_name)
        self._failures[key] = self._failures.get(key, 0) + 1
        self.failures_recorded += 1
        obs = self.grid.obs
        if obs.enabled:
            obs.metrics.counter(
                "integrity.verification_failures", reason=reason
            ).inc()
            obs.events.emit(
                "integrity.verification_failure",
                logical_name=logical_name, host=host_name,
                reason=reason, failures=self._failures[key],
            )
        logger.warning(
            "verification failure for %r at %s (%s; %d of %d tolerated)",
            logical_name, host_name, reason, self._failures[key],
            self.failure_threshold,
        )
        if (self._failures[key] >= self.failure_threshold
                and key not in self._quarantined):
            self.quarantine(logical_name, host_name, reason)
            return True
        return False

    def record_success(self, logical_name, host_name):
        """A clean verification resets the consecutive-failure count."""
        self._failures.pop((logical_name, host_name), None)

    def failure_count(self, logical_name, host_name):
        return self._failures.get((logical_name, host_name), 0)

    # -- quarantine lifecycle ---------------------------------------------

    def quarantine(self, logical_name, host_name, reason="corrupt"):
        """Place a replica under quarantine (idempotent refresh)."""
        record = QuarantineRecord(
            logical_name, host_name, reason, since=self._now,
            until=self._now + self.quarantine_seconds,
        )
        fresh = (logical_name, host_name) not in self._quarantined
        self._quarantined[(logical_name, host_name)] = record
        if fresh:
            self.quarantines_total += 1
        obs = self.grid.obs
        if obs.enabled:
            obs.metrics.counter("integrity.quarantines").inc()
            obs.events.emit(
                "integrity.quarantine", logical_name=logical_name,
                host=host_name, reason=reason, until=record.until,
            )
        logger.warning(
            "quarantined replica of %r at %s (%s) until t=%g",
            logical_name, host_name, reason, record.until,
        )
        return record

    def readmit(self, logical_name, host_name):
        """Lift a quarantine after a clean repair audit."""
        record = self._quarantined.pop((logical_name, host_name), None)
        if record is None:
            return None
        self._failures.pop((logical_name, host_name), None)
        self.readmissions_total += 1
        obs = self.grid.obs
        if obs.enabled:
            obs.metrics.counter("integrity.readmissions").inc()
            obs.events.emit(
                "integrity.readmit", logical_name=logical_name,
                host=host_name,
            )
        logger.info(
            "re-admitted replica of %r at %s", logical_name, host_name
        )
        return record

    def is_quarantined(self, logical_name, host_name):
        record = self._quarantined.get((logical_name, host_name))
        if record is None:
            return False
        if record.until <= self._now:
            # Lapsed without repair: selection may probe it again.
            del self._quarantined[(logical_name, host_name)]
            self._failures.pop((logical_name, host_name), None)
            return False
        return True

    def quarantined_replicas(self):
        """Active quarantine records, sorted for deterministic sweeps."""
        return [
            self._quarantined[key]
            for key in sorted(self._quarantined)
            if self.is_quarantined(*key)
        ]

    # -- host outages (fed by chaos host_crash) ----------------------------

    def note_host_down(self, host_name, expected_duration=None):
        """A host went dark; remember when it should return, if known."""
        self._outages[host_name] = (
            None if expected_duration is None
            else self._now + float(expected_duration)
        )

    def note_host_up(self, host_name):
        self._outages.pop(host_name, None)

    # -- retry hints -------------------------------------------------------

    def retry_after(self, logical_name, host_names):
        """Seconds until the shortest quarantine/outage window among the
        candidates ends, or None when no window is known.

        ``logical_name`` may be None (host-outage windows only).
        """
        now = self._now
        windows = []
        for host_name in host_names:
            if logical_name is not None:
                record = self._quarantined.get((logical_name, host_name))
                if record is not None and record.until > now:
                    windows.append(record.until - now)
            until = self._outages.get(host_name)
            if until is not None and until > now:
                windows.append(until - now)
        return min(windows) if windows else None
