"""Verified byte ranges: what a resuming transfer may trust.

A :class:`VerifiedRanges` merges two bookkeeping streams the reliable
transfer layer produces: GridFTP *restart markers* (bytes that landed)
and *manifest verification* results (bytes that landed **and** hashed
correctly).  Resume decisions come only from the merged verified set,
so an interrupted or corrupted transfer restarts from the last verified
byte — on the same replica or, after failover, on a different one.

Ranges are tagged with the content version they were verified against:
markers recorded from an abandoned replica attempt must never be merged
into the byte ranges of a failover replica holding a *different*
version of the file (the content differs block-for-block, so a verified
range of version N says nothing about version M).  :meth:`adopt`
enforces that — the cross-replica resume bug this module exists to
prevent.
"""

import math

__all__ = ["VerifiedRanges", "plan_next_fetch"]


class VerifiedRanges:
    """Disjoint, sorted verified ``[start, end)`` byte ranges.

    ``version`` pins the content generation every stored range was
    verified against; ``None`` means version-agnostic (no manifest in
    play, plain restart-marker semantics).
    """

    def __init__(self, version=None):
        self.version = version
        self._ranges = []

    def __repr__(self):
        return (
            f"<VerifiedRanges v{self.version} "
            f"{len(self._ranges)} range(s), "
            f"{self.total_verified:.0f}B verified>"
        )

    def __len__(self):
        return len(self._ranges)

    def ranges(self):
        """The verified ranges as sorted (start, end) pairs."""
        return list(self._ranges)

    @property
    def total_verified(self):
        return sum(end - start for start, end in self._ranges)

    def add(self, start, end):
        """Merge ``[start, end)`` into the verified set (idempotent)."""
        start, end = float(start), float(end)
        if end <= start:
            return
        merged = [(start, end)]
        for lo, hi in self._ranges:
            if hi < merged[0][0] or lo > merged[0][1]:
                merged.append((lo, hi))
            else:
                merged[0] = (min(lo, merged[0][0]), max(hi, merged[0][1]))
        self._ranges = sorted(merged)

    def adopt(self, other_ranges, version):
        """Merge ranges verified against ``version`` into this set.

        Returns True and merges when the versions agree (or this set is
        version-agnostic); returns False and merges **nothing** when
        they differ — restart markers from an abandoned attempt against
        one replica version are meaningless for another.
        """
        if self.version is not None and version is not None \
                and version != self.version:
            return False
        for start, end in other_ranges:
            self.add(start, end)
        return True

    def rebase(self, version):
        """Switch to a different content version, discarding every
        range verified against the old one."""
        if version != self.version:
            self.version = version
            self._ranges = []

    def contains(self, start, end):
        """True when ``[start, end)`` is entirely verified."""
        if end <= start:
            return True
        for lo, hi in self._ranges:
            if lo <= start and end <= hi:
                return True
        return False

    def verified_prefix(self):
        """Length of the contiguous verified prefix from byte zero."""
        if not self._ranges or self._ranges[0][0] > 0.0:
            return 0.0
        return self._ranges[0][1]

    def first_gap(self, payload_bytes):
        """First unverified ``[start, end)`` below ``payload_bytes``,
        or None when the whole payload is verified."""
        cursor = 0.0
        for lo, hi in self._ranges:
            if lo > cursor:
                break
            cursor = max(cursor, hi)
        if cursor >= payload_bytes:
            return None
        end = payload_bytes
        for lo, hi in self._ranges:
            if lo > cursor:
                end = min(end, lo)
                break
        return cursor, end

    def is_complete(self, payload_bytes):
        return self.first_gap(payload_bytes) is None


def plan_next_fetch(ranges, payload_bytes, marker_bytes,
                    block_bytes=None):
    """The next ``(offset, length)`` a resuming transfer should fetch.

    The fetch starts at the first unverified byte and covers at most
    one restart-marker interval of the gap.  With a manifest in play
    (``block_bytes`` given) the length is rounded up to whole
    verification blocks — a fetch always ends on a block boundary (or
    at end of gap/file), so a verified chunk never strands a partial
    block.  Returns None when the payload is fully verified.

    Because fetches begin exactly at the gap start, a resume re-fetches
    at most the one block containing the last unverified byte — never
    data that already verified.
    """
    if marker_bytes <= 0:
        raise ValueError("marker_bytes must be positive")
    gap = ranges.first_gap(payload_bytes)
    if gap is None:
        return None
    start, gap_end = gap
    length = min(marker_bytes, gap_end - start)
    if block_bytes:
        # Extend to the enclosing block boundary, staying inside the gap.
        end = start + length
        aligned = min(
            block_bytes * math.ceil(end / block_bytes), gap_end,
            payload_bytes,
        )
        length = aligned - start
    return start, length
