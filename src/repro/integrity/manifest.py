"""Per-block checksum manifests for logical files.

GridFTP's ``ERET``/``ESTO`` extensions let clients checksum blocks as
they arrive (Allcock et al. make integrity a first-class concern of the
replica management stack); here a :class:`ChecksumManifest` is computed
when a logical file is published and travels with its catalog entry.
Transfers verify every received block's digest against the manifest, so
bit rot, silent truncation and stale replica versions are caught at the
data channel instead of poisoning downstream computation.

Payload bytes are not modelled, so digests are *simulated*: the digest
of a block is a deterministic hash of (logical name, content version,
block index), and a stored block whose replica has rotted, truncated or
drifted to a different version hashes to a tamper-marked value that can
never match the manifest.  The decision structure — which blocks
verify, which fail, what a resume may trust — is exactly the real one.
"""

import hashlib
import math

from repro.units import MiB

__all__ = ["ChecksumManifest", "DEFAULT_BLOCK_BYTES"]

#: Default manifest block granularity (the verification/restart unit).
DEFAULT_BLOCK_BYTES = 8 * MiB


class ChecksumManifest:
    """Block-level checksums of one logical file's content.

    Parameters
    ----------
    logical_name:
        The logical file the manifest describes.
    size_bytes:
        Total payload size.
    block_bytes:
        Verification granularity; the last block may be short.
    version:
        Content generation the digests were computed from.  A replica
        stamped with a different version fails every block.
    algorithm:
        Digest algorithm label (metadata only; digests here are
        simulated).
    """

    def __init__(self, logical_name, size_bytes,
                 block_bytes=DEFAULT_BLOCK_BYTES, version=0,
                 algorithm="sha256"):
        if not logical_name:
            raise ValueError("manifest needs a logical file name")
        if size_bytes < 0:
            raise ValueError(f"negative size {size_bytes}")
        if block_bytes <= 0:
            raise ValueError("block_bytes must be positive")
        self.logical_name = logical_name
        self.size_bytes = float(size_bytes)
        self.block_bytes = float(block_bytes)
        self.version = int(version)
        self.algorithm = algorithm

    def __repr__(self):
        return (
            f"<ChecksumManifest {self.logical_name!r} v{self.version}: "
            f"{self.num_blocks} x {self.block_bytes / MiB:g}MiB blocks>"
        )

    @property
    def num_blocks(self):
        return int(math.ceil(self.size_bytes / self.block_bytes))

    def block_span(self, index):
        """Byte range ``[start, end)`` of block ``index``."""
        if not 0 <= index < max(self.num_blocks, 1):
            raise IndexError(f"block {index} of {self.num_blocks}")
        start = index * self.block_bytes
        return start, min(start + self.block_bytes, self.size_bytes)

    def blocks_overlapping(self, start, end):
        """Block indices whose spans intersect ``[start, end)``."""
        if end <= start or self.num_blocks == 0:
            return range(0)
        first = int(start // self.block_bytes)
        last = int(math.ceil(end / self.block_bytes))
        return range(max(first, 0), min(last, self.num_blocks))

    def align_down(self, offset):
        """Largest block boundary at or below ``offset``."""
        return min(
            self.block_bytes * int(offset // self.block_bytes),
            self.size_bytes,
        )

    def align_up(self, offset):
        """Smallest block boundary at or above ``offset``."""
        return min(
            self.block_bytes * math.ceil(offset / self.block_bytes),
            self.size_bytes,
        )

    # -- digests -----------------------------------------------------------

    def block_digest(self, index):
        """The manifest's expected digest of block ``index``."""
        self.block_span(index)  # bounds check
        return self._digest(self.version, index, tamper="")

    def stored_block_digest(self, stored, index):
        """Digest of block ``index`` as held by ``stored``.

        ``stored`` is a :class:`~repro.hosts.filesystem.StoredFile`.
        Clean blocks of the right version hash to the manifest digest;
        rot, truncation or a version drift yields a tamper-marked value.
        """
        start, end = self.block_span(index)
        if stored.version == self.version and stored.range_is_clean(
            start, min(end, stored.size_bytes)
        ) and end <= stored.size_bytes:
            return self._digest(self.version, index, tamper="")
        return self._digest(stored.version, index, tamper="tampered")

    def _digest(self, version, index, tamper):
        text = (
            f"{self.algorithm}:{self.logical_name}:{version}:"
            f"{index}:{self.block_bytes:.0f}:{tamper}"
        )
        return hashlib.sha256(text.encode()).hexdigest()

    # -- verification ------------------------------------------------------

    def verify_block(self, stored, index):
        """True when the stored block's digest matches the manifest."""
        return self.stored_block_digest(stored, index) == \
            self.block_digest(index)

    def verify_range(self, stored, start, end):
        """Verify every block touching ``[start, end)``.

        Returns ``(good, bad)``: lists of block indices that matched /
        mismatched the manifest.
        """
        good, bad = [], []
        for index in self.blocks_overlapping(start, end):
            (good if self.verify_block(stored, index) else bad).append(
                index
            )
        return good, bad

    def first_bad_block(self, stored, start, end):
        """Index of the first failing block in the range, or None."""
        for index in self.blocks_overlapping(start, end):
            if not self.verify_block(stored, index):
                return index
        return None

    def audit(self, stored):
        """Full-file audit: True when every block verifies and the
        stored size matches the manifest."""
        if stored.size_bytes != self.size_bytes:
            return False
        return self.first_bad_block(stored, 0.0, self.size_bytes) is None
