"""The per-host GRAM job manager.

A FIFO, space-shared scheduler (the default fork job manager backed by
a queue): the head-of-queue job starts as soon as enough free cores
exist.  Running jobs occupy real cores on the host's CPU model, so MDS
and the cost model see the load.
"""

from collections import deque

from repro.gram.job import JobState
from repro.sim import Interrupt

__all__ = ["JobManager"]


class JobManager:
    """GRAM job manager attached to one grid host."""

    service_name = "gram"

    def __init__(self, grid, host_name, notify=None):
        self.grid = grid
        self.host = grid.host(host_name)
        #: Called on every occupancy change (normally
        #: ``grid.network.rebalance`` so transfer rates react).
        self.notify = notify
        self._queue = deque()
        self._running = {}
        self._runners = {}
        #: All jobs ever submitted, in order.
        self.jobs = []
        grid.register_service(host_name, self.service_name, self)

    def __repr__(self):
        return (
            f"<JobManager on {self.host.name}: "
            f"{len(self._running)} running, {len(self._queue)} queued>"
        )

    @property
    def occupied_cores(self):
        return sum(job.cores for job in self._running.values())

    @property
    def free_cores(self):
        return self.host.cpu.cores - self.occupied_cores

    @property
    def queue_length(self):
        return len(self._queue)

    def running_jobs(self):
        return list(self._running.values())

    # -- submission / control -------------------------------------------------

    def submit(self, job):
        """Accept a job: PENDING, then scheduled FIFO."""
        if job.cores > self.host.cpu.cores:
            raise ValueError(
                f"{job!r} needs {job.cores} cores; "
                f"{self.host.name} has {self.host.cpu.cores}"
            )
        job.submitted_at = self.grid.sim.now
        job.terminal_event = self.grid.sim.event()
        job.transition(JobState.PENDING)
        self.jobs.append(job)
        self._queue.append(job)
        self._schedule()
        return job

    def cancel(self, job):
        """Cancel a pending or running job."""
        if job.is_terminal:
            return
        if job in self._queue:
            self._queue.remove(job)
            self._finish(job, JobState.CANCELED)
            return
        if job.id in self._running:
            runner = self._runners.pop(job.id)
            runner.interrupt(cause="canceled")
            return
        # Unsubmitted job: just mark it.
        job.transition(JobState.CANCELED)

    # -- internals ----------------------------------------------------------------

    def _schedule(self):
        started = False
        while self._queue and self._queue[0].cores <= self.free_cores:
            job = self._queue.popleft()
            self._running[job.id] = job
            job.started_at = self.grid.sim.now
            job.transition(JobState.ACTIVE)
            self._runners[job.id] = self.grid.sim.process(
                self._run_job(job)
            )
            started = True
        if started:
            self._apply_occupancy()

    def _run_job(self, job):
        try:
            yield self.grid.sim.timeout(job.wall_seconds)
        except Interrupt:
            self._running.pop(job.id, None)
            self._runners.pop(job.id, None)
            self._finish(job, JobState.CANCELED)
            self._apply_occupancy()
            self._schedule()
            return
        self._running.pop(job.id, None)
        self._runners.pop(job.id, None)
        self._finish(job, JobState.DONE)
        self._apply_occupancy()
        self._schedule()

    def _finish(self, job, state):
        job.finished_at = self.grid.sim.now
        job.transition(state)
        if getattr(job, "terminal_event", None) is not None:
            job.terminal_event.succeed(job)

    def _apply_occupancy(self):
        self.host.cpu.set_gram_busy(self.occupied_cores)
        if self.notify is not None:
            self.notify()
