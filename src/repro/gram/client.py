"""The GRAM client: remote job submission over GSI.

Submitting to a remote job manager costs a GSI handshake plus a round
trip for the RSL request, matching ``globusrun`` against a gatekeeper.
"""

from repro.gram.manager import JobManager
from repro.gridftp.gsi import GSIConfig, gsi_handshake

__all__ = ["GramClient"]


class GramClient:
    """Submits jobs from one host to remote job managers."""

    def __init__(self, grid, host_name, gsi=None):
        self.grid = grid
        self.host_name = host_name
        self.gsi = gsi or GSIConfig()
        #: (job, target_host) submission log.
        self.submissions = []

    def __repr__(self):
        return f"<GramClient on {self.host_name}>"

    def submit(self, target_host, job):
        """Submit ``job`` to ``target_host``; a generator returning it.

        Charges GSI authentication to the gatekeeper plus one round
        trip for the request/acknowledgement.
        """
        manager = self.grid.service(target_host, JobManager.service_name)
        yield from gsi_handshake(
            self.grid, self.host_name, target_host, self.gsi
        )
        if target_host != self.host_name:
            yield self.grid.sim.timeout(
                self.grid.path(self.host_name, target_host).rtt
            )
        manager.submit(job)
        self.submissions.append((job, target_host))
        return job

    def wait(self, job):
        """Block until the job reaches a terminal state; returns it."""
        if job.is_terminal:
            return job
        result = yield job.terminal_event
        return result

    def cancel(self, target_host, job):
        """Cancel a job on a remote manager (one round trip)."""
        manager = self.grid.service(target_host, JobManager.service_name)
        if target_host != self.host_name:
            yield self.grid.sim.timeout(
                self.grid.path(self.host_name, target_host).rtt
            )
        manager.cancel(job)
        return job
