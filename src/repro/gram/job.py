"""GRAM jobs and their state machine."""

import itertools

__all__ = ["Job", "JobState"]


class JobState:
    """The GRAM job states (GRAM2 protocol constants)."""

    UNSUBMITTED = "unsubmitted"
    PENDING = "pending"
    ACTIVE = "active"
    DONE = "done"
    FAILED = "failed"
    CANCELED = "canceled"

    TERMINAL = frozenset({DONE, FAILED, CANCELED})

    #: Legal transitions of the state machine.
    TRANSITIONS = {
        UNSUBMITTED: {PENDING, CANCELED},
        PENDING: {ACTIVE, CANCELED, FAILED},
        ACTIVE: {DONE, FAILED, CANCELED},
        DONE: set(),
        FAILED: set(),
        CANCELED: set(),
    }


class Job:
    """One GRAM job: a CPU burst on some cores of one host.

    Parameters
    ----------
    cpu_seconds:
        Core-seconds of work (e.g. 120.0 = one core for two minutes).
    cores:
        Cores the job occupies while active; its wall-clock duration is
        ``cpu_seconds / cores``.
    """

    _ids = itertools.count(1)

    def __init__(self, cpu_seconds, cores=1, label=None):
        if cpu_seconds <= 0:
            raise ValueError("cpu_seconds must be positive")
        if cores < 1:
            raise ValueError("cores must be >= 1")
        self.id = next(Job._ids)
        self.cpu_seconds = float(cpu_seconds)
        self.cores = int(cores)
        self.label = label or f"job-{self.id}"
        self.state = JobState.UNSUBMITTED
        self.submitted_at = None
        self.started_at = None
        self.finished_at = None
        #: Callbacks invoked as fn(job, new_state) on every transition —
        #: GRAM's job-state callback contract.
        self.callbacks = []

    def __repr__(self):
        return f"<Job #{self.id} {self.label!r} {self.state}>"

    @property
    def wall_seconds(self):
        """Execution time once running."""
        return self.cpu_seconds / self.cores

    @property
    def is_terminal(self):
        return self.state in JobState.TERMINAL

    @property
    def queue_seconds(self):
        """Time spent PENDING (None until it has run)."""
        if self.started_at is None or self.submitted_at is None:
            return None
        return self.started_at - self.submitted_at

    def transition(self, new_state):
        """Move to ``new_state``, enforcing the GRAM state machine."""
        allowed = JobState.TRANSITIONS[self.state]
        if new_state not in allowed:
            raise ValueError(
                f"illegal transition {self.state} -> {new_state} "
                f"for {self!r}"
            )
        self.state = new_state
        for callback in list(self.callbacks):
            callback(self, new_state)
