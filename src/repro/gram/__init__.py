"""GRAM: Grid Resource Allocation and Management.

The paper describes the Globus Toolkit as three pillars — Resource
Management (GRAM), Information Services (MDS) and Data Management
(GridFTP) — all sharing GSI.  The other two pillars are elsewhere in
this library; this package is the third: job submission and execution
management.

A :class:`JobManager` runs on each host, schedules submitted jobs onto
the host's CPU cores (FIFO, like the default "fork" scheduler backed by
a queue), and drives the standard GRAM state machine::

    UNSUBMITTED -> PENDING -> ACTIVE -> DONE
                                   \\-> FAILED
    (any non-terminal state) -> CANCELED

Running jobs genuinely occupy CPU cores, so they lower the host's
CPU-idle observable — the very signal the paper's cost model reads
through MDS.  That closes the loop: compute load submitted through GRAM
steers replica selection away from busy sites.
"""

from repro.gram.client import GramClient
from repro.gram.job import Job, JobState
from repro.gram.manager import JobManager

__all__ = ["GramClient", "Job", "JobManager", "JobState"]
