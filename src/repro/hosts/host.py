"""The Host: a grid node bundling CPU, disk and filesystem.

A host is where replicas live and where transfers terminate.  Its
:meth:`transfer_source_links` / :meth:`transfer_sink_links` return the
resource channels a data flow must thread through, coupling machine load
into transfer rates.
"""

from repro.hosts.cpu import CPU
from repro.hosts.disk import Disk
from repro.hosts.filesystem import FileSystem
from repro.network.tcp import TCPParameters
from repro.units import MiB

__all__ = ["Host"]


class Host:
    """One grid machine.

    Parameters
    ----------
    sim:
        The simulator.
    name:
        Network node name; must match a topology node.
    site:
        Cluster/site label (e.g. ``"THU"``).
    cores, frequency_ghz:
        CPU shape.
    disk_bandwidth, disk_capacity:
        Disk shape, bytes/s and bytes.
    memory_bytes:
        Installed RAM; reported by MDS, not a transfer constraint.
    tcp:
        :class:`TCPParameters` of the host's stack.
    """

    def __init__(self, sim, name, site, cores=1, frequency_ghz=2.0,
                 disk_bandwidth=50e6, disk_capacity=60e9,
                 memory_bytes=512 * MiB, tcp=None):
        self.sim = sim
        self.name = name
        self.site = site
        self.memory_bytes = float(memory_bytes)
        self.cpu = CPU(sim, name, cores=cores, frequency_ghz=frequency_ghz)
        self.disk = Disk(sim, name, disk_bandwidth, disk_capacity)
        self.filesystem = FileSystem(disk_capacity)
        self.tcp = tcp or TCPParameters()
        self._up = True
        #: (time, is_up) transition log of crashes and reboots.
        self.uptime_history = []

    def __repr__(self):
        state = "" if self._up else " DOWN"
        return f"<Host {self.name} @ {self.site}{state}>"

    # -- availability ----------------------------------------------------------

    @property
    def is_up(self):
        """False while the machine is crashed (refuses connections)."""
        return self._up

    def crash(self):
        """Take the machine down: new connections to it are refused.

        The filesystem survives (disks persist across crashes); callers
        that also want in-flight traffic to stall should fail the host's
        network links — the chaos engine's ``host_crash`` action does
        both.
        """
        if self._up:
            self._up = False
            self.uptime_history.append((self.sim.now, False))

    def reboot(self):
        """Bring a crashed machine back up."""
        if not self._up:
            self._up = True
            self.uptime_history.append((self.sim.now, True))

    # -- observables the monitors read ---------------------------------------

    @property
    def cpu_idle_fraction(self):
        return self.cpu.idle_fraction

    @property
    def io_idle_fraction(self):
        return self.disk.io_idle_fraction

    # -- flow coupling ---------------------------------------------------------

    def transfer_source_links(self):
        """Resource channels a flow reading from this host occupies."""
        return [self.disk.channel, self.cpu.channel]

    def transfer_sink_links(self):
        """Resource channels a flow writing to this host occupies."""
        return [self.disk.channel, self.cpu.channel]
