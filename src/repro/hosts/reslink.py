"""Resource channels: Link-like capacity constraints outside the topology.

The flow network treats anything with ``key``, ``available_capacity``,
``allocated`` and ``bytes_carried`` as a link.  A
:class:`ResourceChannel` implements that interface with a *dynamic*
capacity delegated to its owner (a CPU or disk model), so host-local
contention participates in the same max-min allocation as network links.
"""

__all__ = ["ResourceChannel"]


class ResourceChannel:
    """A dynamic-capacity constraint owned by a host resource.

    ``capacity_fn`` returns the bytes/s currently available to transfers
    through this channel; it is consulted on every flow-network
    rebalance.
    """

    def __init__(self, name, capacity_fn):
        self.name = name
        self._capacity_fn = capacity_fn
        #: Unique hashable identity (channels are never shared by name).
        self.key = ("resource", name)
        self.allocated = 0.0
        self.bytes_carried = 0.0

    def __repr__(self):
        return (
            f"<ResourceChannel {self.name} "
            f"cap={self.available_capacity:.4g}B/s "
            f"alloc={self.allocated:.4g}B/s>"
        )

    @property
    def available_capacity(self):
        capacity = self._capacity_fn()
        if capacity < 0:
            raise ValueError(
                f"resource channel {self.name} produced negative "
                f"capacity {capacity}"
            )
        return capacity
