"""A minimal filesystem holding replica files.

Only what the Data Grid needs: named files with sizes, a space budget
tied to the disk's capacity, and the errors a storage service reports.
Payload *contents* are not modelled — transfers move byte counts — but
each stored file carries the integrity state the end-to-end checksum
layer (:mod:`repro.integrity`) verifies against: a content version and
the byte ranges that have rotted or fallen off the end of the valid
extent.  Chaos actions mutate that state; manifest verification reads
it.
"""

__all__ = [
    "FileExistsInStoreError",
    "FileNotInStoreError",
    "FileSystem",
    "InsufficientSpaceError",
    "StoredFile",
]


class FileNotInStoreError(KeyError):
    """The requested file does not exist on this host."""


class FileExistsInStoreError(ValueError):
    """A file with that name already exists on this host."""


class InsufficientSpaceError(RuntimeError):
    """Not enough free space for the requested file."""


class StoredFile:
    """One physical file: its size plus the state integrity checks read.

    ``version`` is the content generation the bytes were written from
    (manifests pin the expected version); ``valid_bytes`` is the extent
    that actually holds real data (silent truncation shrinks it while
    the directory entry keeps advertising the full size); corrupt
    ranges record bit rot.
    """

    __slots__ = ("name", "size_bytes", "version", "valid_bytes",
                 "_corrupt")

    def __init__(self, name, size_bytes, version=0):
        if size_bytes < 0:
            raise ValueError(f"negative file size {size_bytes}")
        self.name = name
        self.size_bytes = float(size_bytes)
        self.version = int(version)
        self.valid_bytes = float(size_bytes)
        #: Disjoint sorted [start, end) byte ranges that have rotted.
        self._corrupt = []

    def __repr__(self):
        flags = ""
        if self._corrupt:
            flags += f" {len(self._corrupt)} corrupt range(s)"
        if self.valid_bytes < self.size_bytes:
            flags += f" valid to {self.valid_bytes:.0f}B"
        return (
            f"<StoredFile {self.name!r} {self.size_bytes:.0f}B "
            f"v{self.version}{flags}>"
        )

    @property
    def is_pristine(self):
        """True when no corruption or truncation has touched the file."""
        return not self._corrupt and self.valid_bytes >= self.size_bytes

    def corrupt_ranges(self):
        """The rotten byte ranges, as sorted (start, end) pairs."""
        return list(self._corrupt)

    def corrupt_range(self, start, end):
        """Mark ``[start, end)`` as rotten (clipped to the file)."""
        start = max(0.0, float(start))
        end = min(self.size_bytes, float(end))
        if end <= start:
            return
        merged = [(start, end)]
        for lo, hi in self._corrupt:
            if hi < merged[0][0] or lo > merged[0][1]:
                merged.append((lo, hi))
            else:
                merged[0] = (min(lo, merged[0][0]), max(hi, merged[0][1]))
        self._corrupt = sorted(merged)

    def truncate_valid(self, valid_bytes):
        """Silently truncate: bytes past ``valid_bytes`` read as garbage."""
        self.valid_bytes = min(self.valid_bytes,
                               max(0.0, float(valid_bytes)))

    def range_is_clean(self, start, end):
        """True if ``[start, end)`` holds intact bytes of this version."""
        if end <= start:
            return True
        if end > self.valid_bytes:
            return False
        return all(hi <= start or lo >= end for lo, hi in self._corrupt)

    def copy_state_from(self, other):
        """Inherit another stored file's version and damage (a byte-
        for-byte copy reproduces the source's rot)."""
        self.version = other.version
        self.valid_bytes = min(self.size_bytes, other.valid_bytes)
        self._corrupt = [
            (lo, min(hi, self.size_bytes))
            for lo, hi in other._corrupt if lo < self.size_bytes
        ]

    def restore_pristine(self, version):
        """Heal the file in place (a repair rewrote it from clean bytes)."""
        self.version = int(version)
        self.valid_bytes = self.size_bytes
        self._corrupt = []


class FileSystem:
    """Files on one host's disk."""

    def __init__(self, capacity_bytes):
        if capacity_bytes <= 0:
            raise ValueError("capacity_bytes must be positive")
        self.capacity_bytes = float(capacity_bytes)
        self._files = {}

    def __repr__(self):
        return (
            f"<FileSystem {len(self._files)} files, "
            f"{self.used_bytes / 1e9:.2f}/{self.capacity_bytes / 1e9:.2f}GB>"
        )

    def __contains__(self, name):
        return name in self._files

    def __len__(self):
        return len(self._files)

    @property
    def used_bytes(self):
        return sum(f.size_bytes for f in self._files.values())

    @property
    def free_bytes(self):
        return self.capacity_bytes - self.used_bytes

    def create(self, name, size_bytes, version=0):
        """Create a file; raises if it exists or does not fit."""
        if size_bytes < 0:
            raise ValueError(f"negative file size {size_bytes}")
        if name in self._files:
            raise FileExistsInStoreError(name)
        if size_bytes > self.free_bytes:
            raise InsufficientSpaceError(
                f"{name}: need {size_bytes:.0f}B, have {self.free_bytes:.0f}B"
            )
        stored = StoredFile(name, size_bytes, version=version)
        self._files[name] = stored
        return stored

    def delete(self, name):
        """Delete a file; raises if absent."""
        if name not in self._files:
            raise FileNotInStoreError(name)
        del self._files[name]

    def size_of(self, name):
        """Size of a file in bytes; raises if absent."""
        return self.stored(name).size_bytes

    def stored(self, name):
        """The :class:`StoredFile` record; raises if absent."""
        if name not in self._files:
            raise FileNotInStoreError(name)
        return self._files[name]

    def names(self):
        """All file names, sorted."""
        return sorted(self._files)
