"""A minimal filesystem holding replica files.

Only what the Data Grid needs: named files with sizes, a space budget
tied to the disk's capacity, and the errors a storage service reports.
Contents are not modelled — transfers move byte *counts*.
"""

__all__ = [
    "FileExistsInStoreError",
    "FileNotInStoreError",
    "FileSystem",
    "InsufficientSpaceError",
]


class FileNotInStoreError(KeyError):
    """The requested file does not exist on this host."""


class FileExistsInStoreError(ValueError):
    """A file with that name already exists on this host."""


class InsufficientSpaceError(RuntimeError):
    """Not enough free space for the requested file."""


class FileSystem:
    """Files on one host's disk."""

    def __init__(self, capacity_bytes):
        if capacity_bytes <= 0:
            raise ValueError("capacity_bytes must be positive")
        self.capacity_bytes = float(capacity_bytes)
        self._files = {}

    def __repr__(self):
        return (
            f"<FileSystem {len(self._files)} files, "
            f"{self.used_bytes / 1e9:.2f}/{self.capacity_bytes / 1e9:.2f}GB>"
        )

    def __contains__(self, name):
        return name in self._files

    def __len__(self):
        return len(self._files)

    @property
    def used_bytes(self):
        return sum(self._files.values())

    @property
    def free_bytes(self):
        return self.capacity_bytes - self.used_bytes

    def create(self, name, size_bytes):
        """Create a file; raises if it exists or does not fit."""
        if size_bytes < 0:
            raise ValueError(f"negative file size {size_bytes}")
        if name in self._files:
            raise FileExistsInStoreError(name)
        if size_bytes > self.free_bytes:
            raise InsufficientSpaceError(
                f"{name}: need {size_bytes:.0f}B, have {self.free_bytes:.0f}B"
            )
        self._files[name] = float(size_bytes)

    def delete(self, name):
        """Delete a file; raises if absent."""
        if name not in self._files:
            raise FileNotInStoreError(name)
        del self._files[name]

    def size_of(self, name):
        """Size of a file in bytes; raises if absent."""
        if name not in self._files:
            raise FileNotInStoreError(name)
        return self._files[name]

    def names(self):
        """All file names, sorted."""
        return sorted(self._files)
