"""Background load generators for CPUs and disks.

Both are Markov-modulated processes, like the network's
:class:`CrossTrafficProcess`: they hold a level for an exponentially
distributed time, then jump to a random level.  Each jump calls a
``notify`` callback (normally ``FlowNetwork.rebalance``) because changed
CPU/disk headroom changes transfer rates.
"""

from repro.sim import Interrupt

__all__ = ["CPULoadGenerator", "DiskLoadGenerator"]


class _MarkovLoadGenerator:
    """Shared machinery: jump among levels at exponential holding times."""

    def __init__(self, sim, levels, mean_holding_time, stream_name,
                 stream=None, notify=None, jitter=0.0):
        if not levels:
            raise ValueError("need at least one load level")
        if mean_holding_time <= 0:
            raise ValueError("mean_holding_time must be positive")
        if jitter < 0:
            raise ValueError("jitter must be non-negative")
        self.sim = sim
        self.levels = list(levels)
        self.mean_holding_time = float(mean_holding_time)
        self.jitter = float(jitter)
        self.stream = stream or sim.streams.get(stream_name)
        self.notify = notify
        #: (time, level) jump log.
        self.history = []
        self.process = sim.process(self._run())

    def _apply(self, level):  # pragma: no cover - abstract
        raise NotImplementedError

    def _clamp(self, level):  # pragma: no cover - abstract
        raise NotImplementedError

    def _run(self):
        try:
            while True:
                level = self.stream.choice(self.levels)
                if self.jitter > 0.0:
                    level += self.stream.uniform(-self.jitter, self.jitter)
                level = self._clamp(level)
                self._apply(level)
                self.history.append((self.sim.now, level))
                if self.notify is not None:
                    self.notify()
                yield self.sim.timeout(
                    self.stream.expovariate(1.0 / self.mean_holding_time)
                )
        except Interrupt:
            return

    def stop(self):
        """Stop generating load changes (last level stays applied)."""
        if self.process.is_alive:
            self.process.interrupt(cause="stopped")


class CPULoadGenerator(_MarkovLoadGenerator):
    """Modulates a CPU's background busy cores.

    ``levels`` are in busy core-equivalents (may be fractional).
    """

    def __init__(self, sim, cpu, levels, mean_holding_time,
                 stream=None, notify=None, jitter=0.0):
        self.cpu = cpu
        for level in levels:
            if level < 0:
                raise ValueError(f"negative CPU load level {level}")
        super().__init__(
            sim, levels, mean_holding_time,
            stream_name=f"cpuload/{cpu.name}",
            stream=stream, notify=notify, jitter=jitter,
        )

    def _clamp(self, level):
        return min(float(self.cpu.cores), max(0.0, level))

    def _apply(self, level):
        self.cpu.set_background_busy(level)


class DiskLoadGenerator(_MarkovLoadGenerator):
    """Modulates a disk's background utilisation.

    ``levels`` are utilisation fractions in [0, 1).
    """

    def __init__(self, sim, disk, levels, mean_holding_time,
                 stream=None, notify=None, jitter=0.0):
        self.disk = disk
        for level in levels:
            if not 0.0 <= level < 1.0:
                raise ValueError(f"disk load level out of range: {level}")
        super().__init__(
            sim, levels, mean_holding_time,
            stream_name=f"diskload/{disk.name}",
            stream=stream, notify=notify, jitter=jitter,
        )

    def _clamp(self, level):
        return min(0.95, max(0.0, level))

    def _apply(self, level):
        self.disk.set_background_utilisation(level)
