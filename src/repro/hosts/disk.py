"""Disk model.

A host's disk has a maximum sustained bandwidth shared by everything
touching it: transfer reads/writes (via the disk's
:class:`ResourceChannel`) and background I/O from other jobs (set by a
:class:`DiskLoadGenerator` as a utilisation fraction).

The paper's cost model consumes the I/O idle percentage (``IO_P``,
measured there with iostat); :attr:`io_idle_fraction` is that
observable.
"""

from repro.hosts.reslink import ResourceChannel
from repro.timeseries import StepSeries

__all__ = ["Disk"]


class Disk:
    """A disk with ``bandwidth`` bytes/s and ``capacity_bytes`` of space."""

    def __init__(self, sim, name, bandwidth, capacity_bytes,
                 min_transfer_fraction=0.05):
        if bandwidth <= 0:
            raise ValueError("bandwidth must be positive")
        if capacity_bytes <= 0:
            raise ValueError("capacity_bytes must be positive")
        if not 0.0 < min_transfer_fraction <= 1.0:
            raise ValueError("min_transfer_fraction must be in (0, 1]")
        self.sim = sim
        self.name = name
        self.bandwidth = float(bandwidth)
        self.capacity_bytes = float(capacity_bytes)
        self.min_transfer_fraction = float(min_transfer_fraction)
        self._background_util = 0.0
        #: Piecewise-constant history of background utilisation (for iostat).
        self.background_series = StepSeries(sim.now, 0.0)
        self.channel = ResourceChannel(
            f"disk/{name}", self._transfer_capacity
        )

    def __repr__(self):
        return (
            f"<Disk {self.name} {self.bandwidth / 1e6:.0f}MB/s "
            f"idle={self.io_idle_fraction:.2f}>"
        )

    # -- load inputs --------------------------------------------------------

    @property
    def background_utilisation(self):
        return self._background_util

    def set_background_utilisation(self, fraction):
        """Set background I/O demand as a utilisation fraction in [0, 1)."""
        if not 0.0 <= fraction < 1.0:
            raise ValueError(
                f"background utilisation must be in [0, 1): {fraction}"
            )
        self._background_util = float(fraction)
        self.background_series.append(self.sim.now, self._background_util)

    # -- observables ---------------------------------------------------------

    @property
    def transfer_utilisation(self):
        """Fraction of disk bandwidth consumed by transfers right now."""
        return min(1.0, self.channel.allocated / self.bandwidth)

    @property
    def utilisation(self):
        """Total disk utilisation (background + transfers), in [0, 1]."""
        return min(1.0, self._background_util + self.transfer_utilisation)

    @property
    def io_idle_fraction(self):
        """The paper's IO_P observable: fraction of disk time idle."""
        return 1.0 - self.utilisation

    @property
    def bytes_transferred(self):
        """Cumulative bytes moved through this disk by transfers."""
        return self.channel.bytes_carried

    # -- flow coupling ---------------------------------------------------------

    def _transfer_capacity(self):
        """Bytes/s available to transfers after background I/O."""
        free = max(
            self.min_transfer_fraction, 1.0 - self._background_util
        )
        return free * self.bandwidth
