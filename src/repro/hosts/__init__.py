"""Simulated grid hosts: CPU, disk, filesystem and background load.

A :class:`Host` bundles the machine-local resources a Data Grid node
contributes: a multi-core :class:`CPU`, a :class:`Disk`, and a
:class:`FileSystem` holding replica files.  CPU and disk expose
*resource channels* — Link-like capacity constraints that transfers
thread through the flow network, so a loaded CPU or busy disk slows
transfers exactly the way the paper observes.

Background load (other users' jobs on the 2005 clusters) is produced by
:class:`CPULoadGenerator` and :class:`DiskLoadGenerator`, Markov-
modulated processes that keep the CPU-idle% and I/O-idle% observables
genuinely time-varying.
"""

from repro.hosts.cpu import CPU
from repro.hosts.disk import Disk
from repro.hosts.filesystem import (
    FileExistsInStoreError,
    FileNotInStoreError,
    FileSystem,
    InsufficientSpaceError,
    StoredFile,
)
from repro.hosts.host import Host
from repro.hosts.load import CPULoadGenerator, DiskLoadGenerator
from repro.hosts.reslink import ResourceChannel

__all__ = [
    "CPU",
    "CPULoadGenerator",
    "Disk",
    "DiskLoadGenerator",
    "FileExistsInStoreError",
    "FileNotInStoreError",
    "FileSystem",
    "Host",
    "InsufficientSpaceError",
    "ResourceChannel",
    "StoredFile",
]
