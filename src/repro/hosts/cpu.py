"""Multi-core CPU model.

The CPU serves two demand sources:

* *background jobs* — other users' computation, set by a
  :class:`CPULoadGenerator` as a number of busy core-equivalents;
* *data transfers* — moving bytes costs CPU (checksumming, copies,
  interrupts).  The cost is ``transfer_cost_per_byte`` core-seconds per
  byte, scaled inversely with clock frequency, and is imposed on flows
  through the CPU's :class:`ResourceChannel`.

The paper's cost model consumes the CPU idle percentage (``CPU_P``);
:attr:`idle_fraction` is that observable.
"""

from repro.hosts.reslink import ResourceChannel
from repro.timeseries import StepSeries

__all__ = ["CPU"]

#: Core-seconds of CPU burned per transferred byte on a 2 GHz reference
#: core (one such core sustains ~200 MB/s of GridFTP traffic).
_REFERENCE_COST_PER_BYTE = 5e-9
_REFERENCE_GHZ = 2.0


class CPU:
    """A host CPU with ``cores`` cores at ``frequency_ghz``.

    ``min_transfer_cores`` guarantees transfers a slice of CPU even on a
    saturated machine (the OS scheduler never starves them completely),
    so a loaded replica site slows fetches instead of deadlocking them.
    """

    def __init__(self, sim, name, cores=1, frequency_ghz=2.0,
                 transfer_cost_per_byte=None, min_transfer_cores=0.05):
        if cores < 1:
            raise ValueError("cores must be >= 1")
        if frequency_ghz <= 0:
            raise ValueError("frequency_ghz must be positive")
        if min_transfer_cores <= 0:
            raise ValueError("min_transfer_cores must be positive")
        self.sim = sim
        self.name = name
        self.cores = int(cores)
        self.frequency_ghz = float(frequency_ghz)
        if transfer_cost_per_byte is None:
            transfer_cost_per_byte = (
                _REFERENCE_COST_PER_BYTE * _REFERENCE_GHZ / frequency_ghz
            )
        if transfer_cost_per_byte <= 0:
            raise ValueError("transfer_cost_per_byte must be positive")
        self.transfer_cost_per_byte = float(transfer_cost_per_byte)
        self.min_transfer_cores = float(min_transfer_cores)
        self._background_busy = 0.0
        self._gram_busy = 0.0
        #: Piecewise-constant history of background busy cores (for sar).
        self.background_series = StepSeries(sim.now, 0.0)
        self.channel = ResourceChannel(
            f"cpu/{name}", self._transfer_capacity
        )

    def __repr__(self):
        return (
            f"<CPU {self.name} {self.cores}x{self.frequency_ghz}GHz "
            f"idle={self.idle_fraction:.2f}>"
        )

    # -- load inputs --------------------------------------------------------

    @property
    def background_busy_cores(self):
        return self._background_busy

    def set_background_busy(self, cores_busy):
        """Set background demand in core-equivalents (clamped to cores)."""
        if cores_busy < 0:
            raise ValueError("cores_busy must be non-negative")
        self._background_busy = min(float(cores_busy), float(self.cores))
        self.background_series.append(self.sim.now, self._background_busy)

    @property
    def gram_busy_cores(self):
        """Cores occupied by GRAM-managed jobs."""
        return self._gram_busy

    def set_gram_busy(self, cores_busy):
        """Set GRAM job demand in cores (driven by the JobManager)."""
        if cores_busy < 0:
            raise ValueError("cores_busy must be non-negative")
        self._gram_busy = min(float(cores_busy), float(self.cores))

    # -- observables ---------------------------------------------------------

    @property
    def transfer_busy_cores(self):
        """Core-equivalents consumed by in-flight transfers right now."""
        return self.channel.allocated * self.transfer_cost_per_byte

    @property
    def busy_fraction(self):
        """Fraction of CPU busy (background + jobs + transfers)."""
        busy = (
            self._background_busy + self._gram_busy
            + self.transfer_busy_cores
        )
        return min(1.0, busy / self.cores)

    @property
    def idle_fraction(self):
        """The paper's CPU_P observable: fraction of CPU idle."""
        return 1.0 - self.busy_fraction

    # -- flow coupling ---------------------------------------------------------

    def _transfer_capacity(self):
        """Bytes/s of transfer work the CPU can currently sustain."""
        free_cores = max(
            self.min_transfer_cores,
            self.cores - self._background_busy - self._gram_busy,
        )
        return free_cores / self.transfer_cost_per_byte
