"""Site specifications of the paper's testbed (Fig. 2 / Section 4).

Quoting the paper:

* THU: four PCs with dual AMD AthlonMP 2.0 GHz, 1 GB DDR, 60 GB HD,
  1 Gbps network bandwidth (Tunghai University, Taichung City);
* Li-Zen: four PCs with Intel Celeron 900 MHz, 256 MB DDR, 10 GB HD,
  30 Mbps network bandwidth (Li-Zen High School, Taichung County);
* HIT: four PCs with Intel P4 2.8 GHz, 512 MB DDR, 80 GB HD, 1 Gbps
  network bandwidth (Hsiuping Institute of Technology).

Parameters the paper does not state (WAN latencies, loss rates, uplink
capacities, disk speeds) are set to plausible 2005 TANet values; they
are the calibration knobs of the reproduction and are documented per
field below.
"""

from repro.units import GiB, MiB, mbit_per_s, gbit_per_s

__all__ = ["HIT", "LIZEN", "PAPER_SITES", "SiteSpec"]


class SiteSpec:
    """Everything needed to instantiate one cluster site."""

    def __init__(self, name, host_names, cores, frequency_ghz,
                 memory_bytes, disk_capacity, disk_bandwidth,
                 lan_capacity, lan_latency, wan_capacity, wan_latency,
                 wan_loss_rate):
        self.name = name
        self.host_names = tuple(host_names)
        self.cores = cores
        self.frequency_ghz = frequency_ghz
        self.memory_bytes = memory_bytes
        self.disk_capacity = disk_capacity
        self.disk_bandwidth = disk_bandwidth
        self.lan_capacity = lan_capacity
        self.lan_latency = lan_latency
        self.wan_capacity = wan_capacity
        self.wan_latency = wan_latency
        self.wan_loss_rate = wan_loss_rate

    def __repr__(self):
        return f"<SiteSpec {self.name} ({len(self.host_names)} hosts)>"

    @property
    def switch_name(self):
        return f"{self.name.lower()}-switch"

    def as_dict(self):
        """Canonical, JSON-serialisable form (topology spec digests)."""
        return {
            "name": self.name,
            "host_names": list(self.host_names),
            "cores": self.cores,
            "frequency_ghz": self.frequency_ghz,
            "memory_bytes": self.memory_bytes,
            "disk_capacity": self.disk_capacity,
            "disk_bandwidth": self.disk_bandwidth,
            "lan_capacity": self.lan_capacity,
            "lan_latency": self.lan_latency,
            "wan_capacity": self.wan_capacity,
            "wan_latency": self.wan_latency,
            "wan_loss_rate": self.wan_loss_rate,
        }

    def __eq__(self, other):
        if not isinstance(other, SiteSpec):
            return NotImplemented
        return self.as_dict() == other.as_dict()

    def __hash__(self):
        return hash((self.name, self.host_names))


#: Tunghai University cluster.  1 Gbps campus LAN; OC-3-class uplink to
#: the TANet backbone (the paper's "1 Gbps" is the NIC speed; 2005
#: inter-campus capacity was far lower).
THU = SiteSpec(
    name="THU",
    host_names=("alpha1", "alpha2", "alpha3", "alpha4"),
    cores=2,                      # dual AthlonMP
    frequency_ghz=2.0,
    memory_bytes=1 * GiB,
    disk_capacity=60e9,           # 60 GB HD
    disk_bandwidth=55e6,          # ~55 MB/s sequential (2005 7200rpm)
    lan_capacity=gbit_per_s(1),
    lan_latency=0.0001,
    wan_capacity=mbit_per_s(155),  # OC-3 uplink
    wan_latency=0.0015,            # both campuses are in Taichung
    wan_loss_rate=2e-5,
)

#: Hsiuping Institute of Technology cluster.
HIT = SiteSpec(
    name="HIT",
    host_names=("hit0", "hit1", "hit2", "hit3"),
    cores=1,                      # P4 2.8 GHz
    frequency_ghz=2.8,
    memory_bytes=512 * MiB,
    disk_capacity=80e9,           # 80 GB HD
    disk_bandwidth=60e6,
    lan_capacity=gbit_per_s(1),
    lan_latency=0.0001,
    wan_capacity=mbit_per_s(155),
    wan_latency=0.0025,
    wan_loss_rate=2e-5,
)

#: Li-Zen High School cluster: the weak site.  30 Mbps uplink with the
#: long latency and visible loss of a 2005 county school connection —
#: the path where parallel TCP streams pay off (Fig. 4).
LIZEN = SiteSpec(
    name="LZ",
    host_names=("lz01", "lz02", "lz03", "lz04"),
    cores=1,                      # Celeron 900 MHz
    frequency_ghz=0.9,
    memory_bytes=256 * MiB,
    disk_capacity=10e9,           # 10 GB HD
    disk_bandwidth=25e6,
    lan_capacity=mbit_per_s(100),
    lan_latency=0.0002,
    wan_capacity=mbit_per_s(30),
    wan_latency=0.018,
    wan_loss_rate=4e-3,
)

#: The three sites of the paper, in presentation order.
PAPER_SITES = (THU, LIZEN, HIT)
