"""Builds the full simulated testbed with all services attached."""

from repro.core.server import ReplicaSelectionServer
from repro.grid import DataGrid
from repro.gridftp.ftp import FtpServer
from repro.gridftp.gridftp import GridFtpServer
from repro.hosts.load import CPULoadGenerator, DiskLoadGenerator
from repro.monitoring.information import InformationService
from repro.monitoring.mds import GIIS, GRIS
from repro.monitoring.nws import (
    BandwidthSensor,
    Clique,
    CpuSensor,
    NameServer,
    NwsMemory,
)
from repro.network.traffic import CrossTrafficProcess
from repro.replica.catalog import ReplicaCatalog

__all__ = ["Testbed", "build_testbed"]

#: The backbone router joining the three sites (TANet).
BACKBONE = "tanet"


class Testbed:
    """The assembled testbed: grid plus every attached service."""

    def __init__(self, grid, sites, nameserver, nws_memory, giis,
                 information, catalog, selection_server):
        self.grid = grid
        self.sites = {site.name: site for site in sites}
        self.nameserver = nameserver
        self.nws_memory = nws_memory
        self.giis = giis
        self.information = information
        self.catalog = catalog
        self.selection_server = selection_server
        self.sensors = []
        self.cliques = []
        self.load_generators = []
        self.cross_traffic = []

    def __repr__(self):
        return (
            f"<Testbed {sorted(self.sites)} "
            f"({len(self.grid.hosts)} hosts)>"
        )

    @property
    def sim(self):
        return self.grid.sim

    @property
    def obs(self):
        """The grid's observability bundle (metrics/spans/events)."""
        return self.grid.obs

    def host_names(self):
        return self.grid.host_names()

    def warm_up(self, duration=120.0):
        """Run the simulation so monitors accumulate history."""
        self.grid.run(until=self.sim.now + duration)


def build_testbed(sites=None, seed=0, monitoring=True,
                  sensor_period=10.0, dynamic=False,
                  catalog_host=None, selection_host=None,
                  weights=None, use_cliques=False, observe=None):
    """Construct the paper's three-cluster testbed.

    Parameters
    ----------
    sites:
        Iterable of :class:`SiteSpec`; defaults to the paper's three.
    seed:
        Root seed for all randomness.
    monitoring:
        Attach the NWS deployment (bandwidth sensors between every
        cross-site host pair, CPU sensors everywhere) and MDS.
    sensor_period:
        NWS sensor measurement period, seconds.
    dynamic:
        Start Markov-modulated background load on every host (CPU and
        disk) and cross-traffic on every WAN link — the "real and
        dynamic network situations" of the paper's abstract.
    catalog_host / selection_host:
        Where the catalog and selection/information servers run;
        default: the first host of the first site (the paper runs them
        at THU).
    weights:
        Cost-model weights; default the paper's 80/10/10.
    use_cliques:
        Schedule bandwidth probes through NWS cliques (one per source
        host, token round-robin) instead of independent timers, so
        probes from the same source never collide.  Each pair is still
        measured once per ``sensor_period``.
    observe:
        Attach a live observability bundle (metrics, sim-time spans,
        structured events) to the grid's simulator; reach it as
        ``testbed.obs``.  Default: off, unless a ``repro.obs.capture()``
        context is open.
    """
    from repro.testbed.sites import PAPER_SITES

    sites = list(sites) if sites is not None else list(PAPER_SITES)
    if not sites:
        raise ValueError("need at least one site")
    grid = DataGrid(seed=seed, observe=observe)

    # -- topology ---------------------------------------------------------
    grid.add_router(BACKBONE)
    for site in sites:
        grid.add_router(site.switch_name, site=site.name)
        grid.connect(
            site.switch_name, BACKBONE, site.wan_capacity,
            latency=site.wan_latency, loss_rate=site.wan_loss_rate,
        )
        for host_name in site.host_names:
            grid.add_host(
                host_name, site.name,
                cores=site.cores,
                frequency_ghz=site.frequency_ghz,
                disk_bandwidth=site.disk_bandwidth,
                disk_capacity=site.disk_capacity,
                memory_bytes=site.memory_bytes,
            )
            grid.connect(
                host_name, site.switch_name, site.lan_capacity,
                latency=site.lan_latency,
            )

    # -- data services on every host ----------------------------------------
    for site in sites:
        for host_name in site.host_names:
            FtpServer(grid, host_name)
            GridFtpServer(grid, host_name)

    catalog_host = catalog_host or sites[0].host_names[0]
    selection_host = selection_host or sites[0].host_names[0]

    # -- monitoring -------------------------------------------------------------
    nameserver = NameServer()
    nws_memory = NwsMemory(grid.sim, name=f"memory@{selection_host}")
    nameserver.register("memory", nws_memory.name, nws_memory)
    giis = GIIS(grid, selection_host, ttl=min(30.0, sensor_period))
    testbed_sensors = []
    testbed_cliques = []
    if monitoring:
        for host in grid.hosts.values():
            giis.register(GRIS(grid, host.name))
            testbed_sensors.append(
                CpuSensor(
                    grid.sim, nws_memory, host, period=sensor_period,
                    nameserver=nameserver,
                )
            )
        host_names = grid.host_names()
        for src in host_names:
            members = []
            for dst in host_names:
                if src == dst:
                    continue
                sensor = BandwidthSensor(
                    grid.sim, nws_memory, grid, src, dst,
                    period=sensor_period, nameserver=nameserver,
                    autostart=not use_cliques,
                )
                testbed_sensors.append(sensor)
                members.append(sensor)
            if use_cliques and members:
                testbed_cliques.append(
                    Clique(
                        grid.sim, f"clique@{src}", members,
                        period=sensor_period,
                    )
                )
    else:
        for host in grid.hosts.values():
            giis.register(GRIS(grid, host.name))

    information = InformationService(
        grid, selection_host, nws_memory, giis
    )
    catalog = ReplicaCatalog(grid, catalog_host)
    selection_server = ReplicaSelectionServer(
        grid, selection_host, catalog, information, weights=weights
    )

    testbed = Testbed(
        grid, sites, nameserver, nws_memory, giis, information,
        catalog, selection_server,
    )
    testbed.sensors = testbed_sensors
    testbed.cliques = testbed_cliques

    # -- dynamics ---------------------------------------------------------------
    if dynamic:
        rebalance = grid.network.rebalance
        for site in sites:
            for host_name in site.host_names:
                host = grid.host(host_name)
                testbed.load_generators.append(
                    CPULoadGenerator(
                        grid.sim, host.cpu,
                        levels=[0.0, 0.25 * site.cores,
                                0.6 * site.cores, 0.9 * site.cores],
                        mean_holding_time=60.0,
                        notify=rebalance, jitter=0.05,
                    )
                )
                testbed.load_generators.append(
                    DiskLoadGenerator(
                        grid.sim, host.disk,
                        levels=[0.0, 0.2, 0.5, 0.8],
                        mean_holding_time=90.0,
                        notify=rebalance, jitter=0.05,
                    )
                )
            for direction in [
                (site.switch_name, BACKBONE), (BACKBONE, site.switch_name)
            ]:
                link = grid.topology.link(*direction)
                testbed.cross_traffic.append(
                    CrossTrafficProcess(
                        grid.sim, grid.network, link,
                        levels=[0.05, 0.2, 0.4, 0.6],
                        mean_holding_time=45.0, jitter=0.05,
                    )
                )
    return testbed
