"""Builds the full simulated testbed with all services attached.

Two construction paths share this module:

* the legacy path (``sites=``): the paper's flat layout — every site
  switch on one backbone router, all-pairs NWS mesh, single GIIS;
* the topology path (``topology=``): any
  :class:`~repro.testbed.topology.TopologySpec` — per-region gateway
  routers joined by asymmetric WAN links, with either the same flat
  ``"full"`` monitoring or the hierarchical ``"regional"`` layout
  (per-region GIIS/NWS federated at the selection host, see
  :mod:`repro.monitoring.federation`).

``build_testbed(topology=preset("paper3"))`` reproduces the legacy
``build_testbed()`` byte for byte — same construction order, same
stream names, same trace digest (the differential battery in
``tests/testbed/test_topology_differential.py`` proves it).
"""

from repro.core.server import ReplicaSelectionServer
from repro.grid import DataGrid
from repro.gridftp.ftp import FtpServer
from repro.gridftp.gridftp import GridFtpServer
from repro.hosts.load import CPULoadGenerator, DiskLoadGenerator
from repro.monitoring.federation import FederatedGIIS, FederatedNwsMemory
from repro.monitoring.information import InformationService
from repro.monitoring.mds import GIIS, GRIS
from repro.monitoring.nws import (
    BandwidthSensor,
    Clique,
    CpuSensor,
    NameServer,
    NwsMemory,
)
from repro.network.traffic import CrossTrafficProcess
from repro.replica.catalog import ReplicaCatalog

__all__ = ["Testbed", "build_testbed"]

#: The backbone router joining the three sites (TANet).
BACKBONE = "tanet"


class Testbed:
    """The assembled testbed: grid plus every attached service."""

    def __init__(self, grid, sites, nameserver, nws_memory, giis,
                 information, catalog, selection_server):
        self.grid = grid
        self.sites = {site.name: site for site in sites}
        self.nameserver = nameserver
        self.nws_memory = nws_memory
        self.giis = giis
        self.information = information
        self.catalog = catalog
        self.selection_server = selection_server
        self.sensors = []
        self.cliques = []
        self.load_generators = []
        self.cross_traffic = []
        #: The TopologySpec this testbed was built from (None on the
        #: legacy ``sites=`` path).
        self.spec = None
        #: Canonical (client_host, replica_hosts) roles, when known.
        self.roles = None
        #: Per-region NwsMemory / GIIS under "regional" monitoring.
        self.region_memories = {}
        self.region_giises = {}
        self.sensor_period = 10.0
        #: Worst-case host-to-host round trip, seconds.
        self.max_wan_rtt = 0.0
        #: Derived default for :meth:`warm_up`.
        self.recommended_warmup = 120.0

    def __repr__(self):
        return (
            f"<Testbed {sorted(self.sites)} "
            f"({len(self.grid.hosts)} hosts)>"
        )

    @property
    def sim(self):
        return self.grid.sim

    @property
    def obs(self):
        """The grid's observability bundle (metrics/spans/events)."""
        return self.grid.obs

    def host_names(self):
        return self.grid.host_names()

    def warm_up(self, duration=None):
        """Run the simulation so monitors accumulate history.

        ``duration=None`` uses :attr:`recommended_warmup`, which scales
        with the topology's worst WAN round trip and the sensor period
        — the fixed 120 s the default used to be under-warms
        transcontinental presets whose probes take seconds per round
        trip.
        """
        if duration is None:
            duration = self.recommended_warmup
        self.grid.run(until=self.sim.now + duration)


def _derived_warmup(max_wan_rtt, sensor_period):
    """Warm-up long enough for forecasts to settle on any topology.

    Three floors: the legacy 120 s (the paper's testbed), eight sensor
    periods (forecast batteries need a handful of samples), and 1500
    worst-case round trips (what 120 s gives the legacy testbed's worst
    pair, preserved as a per-RTT budget for long-haul presets).
    """
    return max(120.0, 8.0 * sensor_period, 1500.0 * max_wan_rtt)


def _legacy_max_rtt(sites):
    """Worst host-to-host RTT of the flat layout: both worst uplinks."""
    worst = max(site.wan_latency for site in sites)
    if len(sites) > 1 or len(sites[0].host_names) > 1:
        return 2.0 * (worst + worst)
    return 2.0 * worst


def _build_site(grid, site, uplink_router):
    """One site: switch, uplink, hosts with LAN links (shared by both
    construction paths — order matters for digest equality)."""
    grid.add_router(site.switch_name, site=site.name)
    grid.connect(
        site.switch_name, uplink_router, site.wan_capacity,
        latency=site.wan_latency, loss_rate=site.wan_loss_rate,
    )
    for host_name in site.host_names:
        grid.add_host(
            host_name, site.name,
            cores=site.cores,
            frequency_ghz=site.frequency_ghz,
            disk_bandwidth=site.disk_bandwidth,
            disk_capacity=site.disk_capacity,
            memory_bytes=site.memory_bytes,
        )
        grid.connect(
            host_name, site.switch_name, site.lan_capacity,
            latency=site.lan_latency,
        )


def _attach_full_monitoring(grid, sites, nameserver, nws_memory, giis,
                            sensor_period, use_cliques):
    """The paper's flat deployment: CPU sensors everywhere, bandwidth
    sensors between every ordered host pair."""
    sensors = []
    cliques = []
    for host in grid.hosts.values():
        giis.register(GRIS(grid, host.name))
        sensors.append(
            CpuSensor(
                grid.sim, nws_memory, host, period=sensor_period,
                nameserver=nameserver,
            )
        )
    host_names = grid.host_names()
    for src in host_names:
        members = []
        for dst in host_names:
            if src == dst:
                continue
            sensor = BandwidthSensor(
                grid.sim, nws_memory, grid, src, dst,
                period=sensor_period, nameserver=nameserver,
                autostart=not use_cliques,
            )
            sensors.append(sensor)
            members.append(sensor)
        if use_cliques and members:
            cliques.append(
                Clique(
                    grid.sim, f"clique@{src}", members,
                    period=sensor_period,
                )
            )
    return sensors, cliques


def _attach_regional_monitoring(grid, spec, nameserver, selection_host,
                                sensor_period):
    """Hierarchical deployment: per-region GIIS/NWS memory, sensors on
    the hierarchy only, federation frontends at the selection host.

    Sensor budget: one CPU sensor per host, one bandwidth pair per
    non-hub site (representative <-> hub) and the hub <-> hub mesh —
    about ``hosts + 2*sites + regions^2`` sensors instead of the flat
    layout's ``hosts^2``.

    Every sensor in a region shares one tick-group phase (region index
    spread over the period), so a thousand-site grid ticks a few dozen
    timers per period instead of thousands.
    """
    sensors = []
    region_memories = {}
    region_giises = {}
    region_of = {}
    rep_of = {}
    hub_of = {}
    ttl = min(30.0, sensor_period)
    n_regions = len(spec.regions)

    for index, region in enumerate(spec.regions):
        phase = sensor_period * index / n_regions
        hub = region.hub_host
        hub_of[region.name] = hub
        memory = NwsMemory(grid.sim, name=f"memory@{region.name}")
        nameserver.register("memory", memory.name, memory)
        region_memories[region.name] = memory
        region_giis = GIIS(grid, hub, ttl=ttl)
        region_giises[region.name] = region_giis
        for site in region.sites:
            rep = site.host_names[0]
            for host_name in site.host_names:
                region_of[host_name] = region.name
                rep_of[host_name] = rep
                region_giis.register(GRIS(grid, host_name))
                sensors.append(
                    CpuSensor(
                        grid.sim, memory, grid.host(host_name),
                        period=sensor_period, nameserver=nameserver,
                        phase=phase,
                    )
                )
            if rep != hub:
                for src, dst in ((rep, hub), (hub, rep)):
                    sensors.append(
                        BandwidthSensor(
                            grid.sim, memory, grid, src, dst,
                            period=sensor_period, nameserver=nameserver,
                            phase=phase,
                        )
                    )

    # Hub <-> hub mesh: each directed pair measured from the source
    # region (stored in the source region's memory, at its phase).
    for index, region in enumerate(spec.regions):
        phase = sensor_period * index / n_regions
        src_hub = hub_of[region.name]
        for other in spec.regions:
            if other.name == region.name:
                continue
            sensors.append(
                BandwidthSensor(
                    grid.sim, region_memories[region.name], grid,
                    src_hub, hub_of[other.name],
                    period=sensor_period, nameserver=nameserver,
                    phase=phase,
                )
            )

    fed_memory = FederatedNwsMemory(
        grid.sim, f"memory@{selection_host}",
        region_of=region_of, rep_of=rep_of, hub_of=hub_of,
        memories=region_memories,
    )
    nameserver.register("memory", fed_memory.name, fed_memory)
    fed_giis = FederatedGIIS(grid, selection_host, ttl=ttl)
    for region in spec.regions:
        fed_giis.add_region(region.name, region_giises[region.name])
    return sensors, fed_memory, fed_giis, region_memories, region_giises


def _attach_dynamics(testbed, grid, sites, uplinks, backbone_links):
    """Markov-modulated load on every host plus cross traffic on every
    WAN link (site uplinks and backbone links, both directions)."""
    rebalance = grid.network.rebalance
    for site in sites:
        for host_name in site.host_names:
            host = grid.host(host_name)
            testbed.load_generators.append(
                CPULoadGenerator(
                    grid.sim, host.cpu,
                    levels=[0.0, 0.25 * site.cores,
                            0.6 * site.cores, 0.9 * site.cores],
                    mean_holding_time=60.0,
                    notify=rebalance, jitter=0.05,
                )
            )
            testbed.load_generators.append(
                DiskLoadGenerator(
                    grid.sim, host.disk,
                    levels=[0.0, 0.2, 0.5, 0.8],
                    mean_holding_time=90.0,
                    notify=rebalance, jitter=0.05,
                )
            )
        router = uplinks[site.name]
        for direction in [
            (site.switch_name, router), (router, site.switch_name)
        ]:
            link = grid.topology.link(*direction)
            testbed.cross_traffic.append(
                CrossTrafficProcess(
                    grid.sim, grid.network, link,
                    levels=[0.05, 0.2, 0.4, 0.6],
                    mean_holding_time=45.0, jitter=0.05,
                )
            )
    for src, dst in backbone_links:
        link = grid.topology.link(src, dst)
        testbed.cross_traffic.append(
            CrossTrafficProcess(
                grid.sim, grid.network, link,
                levels=[0.05, 0.2, 0.4, 0.6],
                mean_holding_time=45.0, jitter=0.05,
            )
        )


def build_testbed(sites=None, seed=0, monitoring=True,
                  sensor_period=10.0, dynamic=False,
                  catalog_host=None, selection_host=None,
                  weights=None, use_cliques=False, observe=None,
                  topology=None, monitoring_mode=None):
    """Construct the paper's testbed, or any topology preset.

    Parameters
    ----------
    sites:
        Iterable of :class:`SiteSpec`; defaults to the paper's three.
        Mutually exclusive with ``topology``.
    seed:
        Root seed for all randomness.
    monitoring:
        Attach the NWS deployment and MDS.
    sensor_period:
        NWS sensor measurement period, seconds.
    dynamic:
        Start Markov-modulated background load on every host (CPU and
        disk) and cross-traffic on every WAN link — the "real and
        dynamic network situations" of the paper's abstract.
    catalog_host / selection_host:
        Where the catalog and selection/information servers run;
        default: the first host of the first site (the paper runs them
        at THU), or the topology's client role on the topology path.
    weights:
        Cost-model weights; default the paper's 80/10/10.
    use_cliques:
        Schedule bandwidth probes through NWS cliques (one per source
        host, token round-robin) instead of independent timers, so
        probes from the same source never collide.  Each pair is still
        measured once per ``sensor_period``.  Full monitoring only.
    observe:
        Attach a live observability bundle (metrics, sim-time spans,
        structured events) to the grid's simulator; reach it as
        ``testbed.obs``.  Default: off, unless a ``repro.obs.capture()``
        context is open.
    topology:
        A :class:`~repro.testbed.topology.TopologySpec` or preset name
        (``"paper3"``, ``"scaled-100"``, ...) to build instead of the
        flat ``sites=`` layout.
    monitoring_mode:
        ``"full"`` or ``"regional"``; default: the spec's own
        ``monitoring`` attribute (topology path) or ``"full"``.
    """
    from repro.testbed.sites import PAPER_SITES

    if topology is not None:
        if sites is not None:
            raise ValueError("pass either sites= or topology=, not both")
        if isinstance(topology, str):
            from repro.testbed.topology import preset

            topology = preset(topology)
        topology.validate()
    mode = monitoring_mode or (
        topology.monitoring if topology is not None else "full"
    )
    if mode not in ("full", "regional"):
        raise ValueError(f"unknown monitoring mode {mode!r}")
    if use_cliques and mode != "full":
        raise ValueError("use_cliques requires full monitoring")

    grid = DataGrid(seed=seed, observe=observe)

    # -- topology ---------------------------------------------------------
    if topology is None:
        sites = list(sites) if sites is not None else list(PAPER_SITES)
        if not sites:
            raise ValueError("need at least one site")
        grid.add_router(BACKBONE)
        uplinks = {site.name: BACKBONE for site in sites}
        backbone_links = []
        for site in sites:
            _build_site(grid, site, BACKBONE)
    else:
        sites = topology.sites()
        uplinks = {}
        backbone_links = []
        for region in topology.regions:
            grid.add_router(region.router_name)
        for link in topology.links:
            grid.topology.add_link(
                link.src, link.dst, link.capacity,
                latency=link.latency, loss_rate=link.loss_rate,
            )
            grid.topology.add_link(
                link.dst, link.src, link.reverse_capacity,
                latency=link.latency, loss_rate=link.reverse_loss_rate,
            )
            backbone_links.append((link.src, link.dst))
            backbone_links.append((link.dst, link.src))
        for region in topology.regions:
            for site in region.sites:
                uplinks[site.name] = region.router_name
                _build_site(grid, site, region.router_name)

    # -- data services on every host ----------------------------------------
    for site in sites:
        for host_name in site.host_names:
            FtpServer(grid, host_name)
            GridFtpServer(grid, host_name)

    if topology is not None:
        roles = topology.default_roles()
        default_host = roles[0]
    else:
        roles = None
        default_host = sites[0].host_names[0]
    catalog_host = catalog_host or default_host
    selection_host = selection_host or default_host

    # -- monitoring -------------------------------------------------------------
    nameserver = NameServer()
    testbed_sensors = []
    testbed_cliques = []
    region_memories = {}
    region_giises = {}
    if monitoring and mode == "regional":
        (testbed_sensors, nws_memory, giis,
         region_memories, region_giises) = _attach_regional_monitoring(
            grid, topology, nameserver, selection_host, sensor_period,
        )
    else:
        nws_memory = NwsMemory(grid.sim, name=f"memory@{selection_host}")
        nameserver.register("memory", nws_memory.name, nws_memory)
        giis = GIIS(grid, selection_host, ttl=min(30.0, sensor_period))
        if monitoring:
            testbed_sensors, testbed_cliques = _attach_full_monitoring(
                grid, sites, nameserver, nws_memory, giis,
                sensor_period, use_cliques,
            )
        else:
            for host in grid.hosts.values():
                giis.register(GRIS(grid, host.name))

    information = InformationService(
        grid, selection_host, nws_memory, giis
    )
    catalog = ReplicaCatalog(grid, catalog_host)
    selection_server = ReplicaSelectionServer(
        grid, selection_host, catalog, information, weights=weights
    )

    testbed = Testbed(
        grid, sites, nameserver, nws_memory, giis, information,
        catalog, selection_server,
    )
    testbed.sensors = testbed_sensors
    testbed.cliques = testbed_cliques
    testbed.spec = topology
    testbed.roles = roles
    testbed.region_memories = region_memories
    testbed.region_giises = region_giises
    testbed.sensor_period = sensor_period
    testbed.max_wan_rtt = (
        topology.max_wan_rtt() if topology is not None
        else _legacy_max_rtt(sites)
    )
    testbed.recommended_warmup = _derived_warmup(
        testbed.max_wan_rtt, sensor_period
    )

    # -- dynamics ---------------------------------------------------------------
    if dynamic:
        _attach_dynamics(testbed, grid, sites, uplinks, backbone_links)
    return testbed
