"""The paper's Data Grid testbed: THU, Li-Zen and HIT clusters.

:func:`build_testbed` constructs the full simulated environment of
Fig. 2 — three Linux PC clusters on Taiwanese academic WAN links — with
all services attached: GridFTP/FTP servers on every host, the NWS
deployment, MDS, the replica catalog, the information server and the
replica selection server.
"""

from repro.testbed.builder import Testbed, build_testbed
from repro.testbed.sites import HIT, LIZEN, PAPER_SITES, THU, SiteSpec

__all__ = [
    "HIT",
    "LIZEN",
    "PAPER_SITES",
    "SiteSpec",
    "THU",
    "Testbed",
    "build_testbed",
]
