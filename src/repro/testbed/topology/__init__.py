"""Seeded multi-region grid topologies (spec, generator, presets).

See :mod:`repro.testbed.topology.spec` for the declarative layer,
:mod:`repro.testbed.topology.generator` for the seeded generator, and
:mod:`repro.testbed.topology.presets` for the named scenarios
(``paper3``, ``fat_tree_campus``, ``transcontinental_federation``,
``degraded_backbone``, ``scaled(n)``).  ``docs/topology.md`` has the
catalog and the how-to-add-a-preset guide.
"""

from repro.testbed.topology.generator import GeneratorConfig, generate_topology
from repro.testbed.topology.presets import (
    PRESET_NAMES,
    paper3,
    preset,
    scaled,
)
from repro.testbed.topology.spec import (
    TIER_RANK,
    TIERS,
    RegionSpec,
    TopologySpec,
    TopologyValidationError,
    WanLinkSpec,
)

__all__ = [
    "TIERS",
    "TIER_RANK",
    "GeneratorConfig",
    "PRESET_NAMES",
    "RegionSpec",
    "TopologySpec",
    "TopologyValidationError",
    "WanLinkSpec",
    "generate_topology",
    "paper3",
    "preset",
    "scaled",
]
