"""Named scenario presets.

Four fixed scenarios plus the parametric ``scaled(n_sites)`` family:

``paper3``
    The paper's own testbed — THU / Li-Zen / HIT behind the single
    TANet router — expressed as a one-region spec.  Its sites ARE
    ``PAPER_SITES`` (same objects), its router is named ``tanet`` and
    its roles are pinned to the canonical experiment trio, so building
    it reproduces the legacy hand-built testbed byte for byte (the
    differential battery proves the Table-1 trace digest matches).

``fat_tree_campus``
    A 28-site campus federation in a fat-tree shape: two core regions,
    four metros dual-homed into both cores, eight edge regions
    dual-homed into the metro tier.  Dense redundancy, short distances.

``transcontinental_federation``
    36 sites across three continents-worth of core regions with a 5x
    latency scale on every backbone link — the scenario whose warm-up
    the fixed 120 s default used to under-serve.

``degraded_backbone``
    The transcontinental federation after a backbone incident: every
    inter-region link at quarter capacity, 1.5x latency, and elevated
    loss.  Site uplinks are untouched, so tier invariants still hold.

``scaled(n_sites, seed=0)``
    The parametric family behind the ``fig_scale`` exhibit: 10 to
    1000+ sites, defaults from :class:`GeneratorConfig`.  Also
    reachable by name as ``preset("scaled-250")``.
"""

from repro.testbed.sites import PAPER_SITES
from repro.testbed.topology.generator import GeneratorConfig, generate_topology
from repro.testbed.topology.spec import RegionSpec, TopologySpec, WanLinkSpec

__all__ = ["PRESET_NAMES", "paper3", "preset", "scaled"]


def paper3():
    """The paper's 3-site testbed as a spec (legacy-identical build)."""
    return TopologySpec(
        name="paper3",
        regions=(
            RegionSpec(
                "tanet", "core", PAPER_SITES, router_name="tanet"
            ),
        ),
        links=(),
        monitoring="full",
        roles=("alpha1", ("alpha4", "hit0", "lz02")),
        description="THU / Li-Zen / HIT on the TANet backbone (Fig. 2)",
    ).validate()


def fat_tree_campus():
    """28 sites, 2 cores / 4 metros / 8 edges, dual-homed throughout."""
    return generate_topology(GeneratorConfig(
        n_sites=28,
        seed=7,
        name="fat_tree_campus",
        hosts_per_site=(2, 4),
        region_plan=(("core", 2), ("metro", 4), ("edge", 8)),
        metro_uplinks=2,
        edge_uplinks=2,
    ))


def transcontinental_federation():
    """36 sites, 3 cores / 6 metros / 9 edges, 5x backbone latency."""
    return generate_topology(GeneratorConfig(
        n_sites=36,
        seed=11,
        name="transcontinental_federation",
        hosts_per_site=(1, 3),
        region_plan=(("core", 3), ("metro", 6), ("edge", 9)),
        latency_scale=5.0,
    ))


def degraded_backbone():
    """The transcontinental federation after a backbone incident."""
    base = transcontinental_federation()
    degraded = [
        WanLinkSpec(
            src=link.src,
            dst=link.dst,
            capacity=link.capacity * 0.25,
            latency=min(0.9, link.latency * 1.5),
            loss_rate=min(0.02, link.loss_rate * 20.0 + 2e-3),
            reverse_capacity=link.reverse_capacity * 0.25,
            reverse_loss_rate=min(
                0.02, link.reverse_loss_rate * 20.0 + 2e-3
            ),
        )
        for link in base.links
    ]
    return TopologySpec(
        name="degraded_backbone",
        regions=base.regions,
        links=degraded,
        seed=base.seed,
        monitoring=base.monitoring,
        description=(
            "transcontinental_federation with every backbone link at "
            "quarter capacity, 1.5x latency, elevated loss"
        ),
    ).validate()


def scaled(n_sites, seed=0, **overrides):
    """The parametric family: ``n_sites`` sites, generator defaults.

    Keyword overrides pass straight into :class:`GeneratorConfig`
    (e.g. ``hosts_per_site=1`` for the fig_scale sweep).
    """
    return generate_topology(GeneratorConfig(
        n_sites=n_sites,
        seed=seed,
        name=f"scaled-{n_sites}",
        **overrides,
    ))


_REGISTRY = {
    "paper3": paper3,
    "fat_tree_campus": fat_tree_campus,
    "transcontinental_federation": transcontinental_federation,
    "degraded_backbone": degraded_backbone,
}

#: Names preset() accepts (plus the parametric "scaled-<n>" family).
PRESET_NAMES = tuple(sorted(_REGISTRY)) + ("scaled-<n>",)


def preset(name, seed=0):
    """Look up a preset by name; ``scaled-<n>`` is parsed parametrically.

    ``seed`` only affects the scaled family — the named presets pin
    their own seeds so their digests are stable identities.
    """
    if name in _REGISTRY:
        return _REGISTRY[name]()
    if name.startswith("scaled-"):
        suffix = name[len("scaled-"):]
        if suffix.isdigit():
            return scaled(int(suffix), seed=seed)
    known = ", ".join(PRESET_NAMES)
    raise KeyError(f"unknown topology preset {name!r}; known: {known}")
