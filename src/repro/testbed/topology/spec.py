"""Multi-region grid topology specifications.

The paper's testbed is three sites on one backbone router; ROADMAP
item 2 wants hundreds-to-thousands of sites.  A :class:`TopologySpec`
is the declarative middle layer between the two: it describes *regions*
(groups of :class:`~repro.testbed.sites.SiteSpec` clusters behind one
gateway router, tagged with a tier), the asymmetric WAN links joining
the region gateways, and the canonical experiment roles (client host,
replica hosts) so any experiment can run on any topology.

Specs are plain data: deterministic to construct, canonically
serialisable (:meth:`TopologySpec.to_dict`) and content-addressed
(:meth:`TopologySpec.digest`), which is what the same-seed
byte-identical guarantees of the property battery hang off.

Tiers
-----
Regions carry one of three tiers, ordered ``edge < metro < core``.  The
tier invariant every valid spec upholds: site uplink capacities are
monotone in the tier — no edge site has a fatter uplink than any metro
site, and no metro site out-uplinks any core site.  The generator draws
capacities from disjoint per-tier bands to guarantee it;
:meth:`TopologySpec.validate` proves it for hand-built specs too.
"""

import hashlib
import json

__all__ = [
    "TIERS",
    "TIER_RANK",
    "RegionSpec",
    "TopologySpec",
    "TopologyValidationError",
    "WanLinkSpec",
]

#: Region tiers from the periphery inward.
TIERS = ("edge", "metro", "core")

#: Tier name -> ordinal (edge lowest).
TIER_RANK = {tier: rank for rank, tier in enumerate(TIERS)}

#: Unit sanity bounds enforced by validate(): dimensional mistakes
#: (Mbps written where bytes/s belong, ms where seconds belong) land
#: far outside these windows.
_CAPACITY_BOUNDS = (1e5, 2e10)     # bytes/s: 0.8 Mbps .. 160 Gbps
_LATENCY_BOUNDS = (0.0, 1.0)       # seconds, one-way
_LOSS_BOUNDS = (0.0, 0.05)


class TopologyValidationError(ValueError):
    """A spec violates a structural, tier or unit invariant."""


class WanLinkSpec:
    """One asymmetric WAN link between two region gateway routers.

    Capacity and loss are per direction (``forward`` is src->dst);
    propagation latency is symmetric, as fibre paths are.
    """

    __slots__ = ("src", "dst", "capacity", "reverse_capacity", "latency",
                 "loss_rate", "reverse_loss_rate")

    def __init__(self, src, dst, capacity, latency, loss_rate=0.0,
                 reverse_capacity=None, reverse_loss_rate=None):
        self.src = src
        self.dst = dst
        self.capacity = float(capacity)
        self.latency = float(latency)
        self.loss_rate = float(loss_rate)
        self.reverse_capacity = float(
            capacity if reverse_capacity is None else reverse_capacity
        )
        self.reverse_loss_rate = float(
            loss_rate if reverse_loss_rate is None else reverse_loss_rate
        )

    def __repr__(self):
        return (
            f"<WanLinkSpec {self.src}<->{self.dst} "
            f"{self.capacity:.3g}/{self.reverse_capacity:.3g} B/s "
            f"{self.latency * 1e3:.1f}ms>"
        )

    def as_dict(self):
        return {
            "src": self.src,
            "dst": self.dst,
            "capacity": self.capacity,
            "reverse_capacity": self.reverse_capacity,
            "latency": self.latency,
            "loss_rate": self.loss_rate,
            "reverse_loss_rate": self.reverse_loss_rate,
        }


class RegionSpec:
    """A group of sites behind one gateway router, tagged with a tier."""

    __slots__ = ("name", "tier", "sites", "router_name")

    def __init__(self, name, tier, sites, router_name=None):
        if tier not in TIER_RANK:
            raise TopologyValidationError(
                f"unknown tier {tier!r}; expected one of {TIERS}"
            )
        self.name = name
        self.tier = tier
        self.sites = tuple(sites)
        self.router_name = router_name or f"{name}-gw"

    def __repr__(self):
        return (
            f"<RegionSpec {self.name} ({self.tier}, "
            f"{len(self.sites)} sites)>"
        )

    @property
    def hub_site(self):
        """The region's first site — hosts the region GIIS/NWS services."""
        return self.sites[0]

    @property
    def hub_host(self):
        """Representative host of the hub site (region service home)."""
        return self.hub_site.host_names[0]

    def as_dict(self):
        return {
            "name": self.name,
            "tier": self.tier,
            "router_name": self.router_name,
            "sites": [site.as_dict() for site in self.sites],
        }


class TopologySpec:
    """A complete multi-region grid: regions, WAN links, and roles.

    ``monitoring`` names the default monitoring layout
    :func:`~repro.testbed.builder.build_testbed` uses for this spec:
    ``"full"`` (the paper's all-pairs NWS mesh and single GIIS — only
    affordable on small grids) or ``"regional"`` (per-region GIIS and
    NWS memories federated at the selection host; bandwidth sensors
    follow the hierarchy: site representative <-> region hub, hub <->
    hub).

    ``roles`` optionally pins the canonical experiment roles as
    ``(client_host, (replica_host, ...))``; when absent,
    :meth:`default_roles` derives them deterministically from the
    structure.
    """

    def __init__(self, name, regions, links=(), seed=None,
                 monitoring=None, roles=None, description=""):
        self.name = name
        self.regions = tuple(regions)
        self.links = tuple(links)
        #: Seed the generator used, or None for hand-built specs.
        self.seed = seed
        if monitoring is None:
            monitoring = "full" if self.site_count() <= 12 else "regional"
        if monitoring not in ("full", "regional"):
            raise TopologyValidationError(
                f"unknown monitoring layout {monitoring!r}"
            )
        self.monitoring = monitoring
        self._roles = roles
        self.description = description

    def __repr__(self):
        return (
            f"<TopologySpec {self.name}: {len(self.regions)} regions, "
            f"{self.site_count()} sites, {len(self.links)} WAN links>"
        )

    # -- structure queries -------------------------------------------------

    def sites(self):
        """Every site, region by region, in declaration order."""
        return [site for region in self.regions for site in region.sites]

    def site_count(self):
        return sum(len(region.sites) for region in self.regions)

    def host_count(self):
        return sum(
            len(site.host_names)
            for region in self.regions for site in region.sites
        )

    def region_of(self, site_name):
        """The :class:`RegionSpec` owning ``site_name`` (KeyError if none)."""
        for region in self.regions:
            for site in region.sites:
                if site.name == site_name:
                    return region
        raise KeyError(f"no region owns site {site_name!r}")

    def tier_sites(self, tier):
        """Sites of every region in ``tier``, in declaration order."""
        return [
            site for region in self.regions if region.tier == tier
            for site in region.sites
        ]

    def _region_latencies(self):
        """All-pairs shortest gateway-to-gateway latency (Floyd-Warshall).

        Region counts stay small (tens even at a thousand sites), so
        cubic all-pairs is cheap and has no routing-order ambiguity.
        """
        names = [region.name for region in self.regions]
        index = {name: i for i, name in enumerate(names)}
        n = len(names)
        inf = float("inf")
        dist = [[0.0 if i == j else inf for j in range(n)]
                for i in range(n)]
        router_region = {
            region.router_name: region.name for region in self.regions
        }
        for link in self.links:
            i = index[router_region[link.src]]
            j = index[router_region[link.dst]]
            if link.latency < dist[i][j]:
                dist[i][j] = dist[j][i] = link.latency
        for k in range(n):
            row_k = dist[k]
            for i in range(n):
                d_ik = dist[i][k]
                if d_ik == inf:
                    continue
                row_i = dist[i]
                for j in range(n):
                    cand = d_ik + row_k[j]
                    if cand < row_i[j]:
                        row_i[j] = cand
        return names, dist

    def max_wan_rtt(self):
        """Worst-case round-trip time between any two hosts, seconds.

        The warm-up heuristic's input: site uplink latency of the two
        worst sites plus the longest gateway-to-gateway path, doubled.
        """
        names, dist = self._region_latencies()
        index = {name: i for i, name in enumerate(names)}
        worst = 0.0
        # Worst uplink latency per region, then pairwise over regions.
        uplink = {
            region.name: max(site.wan_latency for site in region.sites)
            for region in self.regions
        }
        for a in self.regions:
            for b in self.regions:
                between = dist[index[a.name]][index[b.name]]
                if between == float("inf"):
                    continue
                one_way = uplink[a.name] + between + uplink[b.name]
                if a.name == b.name and len(a.sites) < 2:
                    one_way = uplink[a.name]
                worst = max(worst, one_way)
        return 2.0 * worst

    def default_roles(self, replica_count=3):
        """Canonical (client_host, replica_hosts) for this topology.

        Pinned roles win; otherwise the client is the first host of the
        first edge-most site and replicas spread evenly over the other
        sites (last host of each chosen site), most-central first.
        """
        if self._roles is not None:
            client, replicas = self._roles
            return client, tuple(replicas[:replica_count])
        ordered = sorted(
            self.regions, key=lambda r: (TIER_RANK[r.tier], r.name)
        )
        client_site = ordered[0].sites[0]
        client = client_site.host_names[0]
        candidates = [
            site for site in self.sites() if site.name != client_site.name
        ]
        if not candidates:
            raise TopologyValidationError(
                "cannot derive replica roles from a single-site topology"
            )
        count = min(replica_count, len(candidates))
        step = len(candidates) / count
        replicas = []
        for i in range(count):
            site = candidates[int(i * step)]
            replicas.append(site.host_names[-1])
        return client, tuple(replicas)

    # -- invariants --------------------------------------------------------

    def validate(self):
        """Prove the structural, tier and unit invariants; returns self.

        Raises :class:`TopologyValidationError` on: duplicate names,
        dangling link endpoints, a disconnected region graph, tier
        capacity non-monotonicity, or out-of-range units.
        """
        if not self.regions:
            raise TopologyValidationError("topology has no regions")
        self._validate_names()
        self._validate_links()
        self._validate_connectivity()
        self._validate_tiers()
        self._validate_units()
        return self

    def _validate_names(self):
        region_names = [region.name for region in self.regions]
        if len(set(region_names)) != len(region_names):
            raise TopologyValidationError("duplicate region names")
        router_names = [region.router_name for region in self.regions]
        if len(set(router_names)) != len(router_names):
            raise TopologyValidationError("duplicate region router names")
        site_names = [site.name for site in self.sites()]
        if len(set(site_names)) != len(site_names):
            raise TopologyValidationError("duplicate site names")
        host_names = [
            host for site in self.sites() for host in site.host_names
        ]
        if len(set(host_names)) != len(host_names):
            raise TopologyValidationError("duplicate host names")
        for site in self.sites():
            if not site.host_names:
                raise TopologyValidationError(
                    f"site {site.name} has no hosts"
                )

    def _validate_links(self):
        routers = {region.router_name for region in self.regions}
        seen = set()
        for link in self.links:
            if link.src not in routers or link.dst not in routers:
                raise TopologyValidationError(
                    f"link {link.src}<->{link.dst} references an "
                    f"unknown region router"
                )
            if link.src == link.dst:
                raise TopologyValidationError(
                    f"self-link on {link.src}"
                )
            key = frozenset((link.src, link.dst))
            if key in seen:
                raise TopologyValidationError(
                    f"duplicate link {link.src}<->{link.dst}"
                )
            seen.add(key)

    def _validate_connectivity(self):
        if len(self.regions) == 1:
            return
        adjacency = {region.router_name: [] for region in self.regions}
        for link in self.links:
            adjacency[link.src].append(link.dst)
            adjacency[link.dst].append(link.src)
        start = self.regions[0].router_name
        seen = {start}
        frontier = [start]
        while frontier:
            node = frontier.pop()
            for neighbour in adjacency[node]:
                if neighbour not in seen:
                    seen.add(neighbour)
                    frontier.append(neighbour)
        missing = sorted(
            region.name for region in self.regions
            if region.router_name not in seen
        )
        if missing:
            raise TopologyValidationError(
                f"region graph is disconnected; unreachable from "
                f"{self.regions[0].name}: {', '.join(missing)}"
            )

    def _validate_tiers(self):
        # Site uplink capacities must be monotone edge <= metro <= core:
        # the fastest uplink of any lower tier may not exceed the
        # slowest uplink of any higher tier.
        extremes = {}
        for region in self.regions:
            fastest = max(site.wan_capacity for site in region.sites)
            slowest = min(site.wan_capacity for site in region.sites)
            low, high = extremes.get(
                region.tier, (float("inf"), 0.0)
            )
            extremes[region.tier] = (min(low, slowest), max(high, fastest))
        for i, lower in enumerate(TIERS):
            for higher in TIERS[i + 1:]:
                if lower not in extremes or higher not in extremes:
                    continue
                if extremes[lower][1] <= extremes[higher][0]:
                    continue
                raise TopologyValidationError(
                    f"tier capacity inversion: fastest {lower} uplink "
                    f"({extremes[lower][1]:.4g} B/s) exceeds slowest "
                    f"{higher} uplink ({extremes[higher][0]:.4g} B/s)"
                )

    def _validate_units(self):
        cap_low, cap_high = _CAPACITY_BOUNDS
        lat_low, lat_high = _LATENCY_BOUNDS
        loss_low, loss_high = _LOSS_BOUNDS
        for site in self.sites():
            for label, capacity in (
                ("wan_capacity", site.wan_capacity),
                ("lan_capacity", site.lan_capacity),
            ):
                if not cap_low <= capacity <= cap_high:
                    raise TopologyValidationError(
                        f"{site.name}.{label} = {capacity:.4g} B/s is "
                        f"outside [{cap_low:.4g}, {cap_high:.4g}] — "
                        f"Mbps written where bytes/s belong?"
                    )
            for label, latency in (
                ("wan_latency", site.wan_latency),
                ("lan_latency", site.lan_latency),
            ):
                if not lat_low <= latency <= lat_high:
                    raise TopologyValidationError(
                        f"{site.name}.{label} = {latency:.4g} s is "
                        f"outside [{lat_low}, {lat_high}] — "
                        f"milliseconds written where seconds belong?"
                    )
            if not loss_low <= site.wan_loss_rate <= loss_high:
                raise TopologyValidationError(
                    f"{site.name}.wan_loss_rate = "
                    f"{site.wan_loss_rate:.4g} outside "
                    f"[{loss_low}, {loss_high}]"
                )
        for link in self.links:
            for capacity in (link.capacity, link.reverse_capacity):
                if not cap_low <= capacity <= cap_high:
                    raise TopologyValidationError(
                        f"link {link.src}<->{link.dst} capacity "
                        f"{capacity:.4g} B/s outside bounds"
                    )
            if not lat_low <= link.latency <= lat_high:
                raise TopologyValidationError(
                    f"link {link.src}<->{link.dst} latency "
                    f"{link.latency:.4g} s outside bounds"
                )
            for loss in (link.loss_rate, link.reverse_loss_rate):
                if not loss_low <= loss <= loss_high:
                    raise TopologyValidationError(
                        f"link {link.src}<->{link.dst} loss "
                        f"{loss:.4g} outside bounds"
                    )

    # -- canonical form ----------------------------------------------------

    def to_dict(self):
        """Canonical, JSON-serialisable description of the whole spec."""
        roles = None
        if self._roles is not None:
            roles = [self._roles[0], list(self._roles[1])]
        return {
            "name": self.name,
            "seed": self.seed,
            "monitoring": self.monitoring,
            "roles": roles,
            "regions": [region.as_dict() for region in self.regions],
            "links": [link.as_dict() for link in self.links],
        }

    def digest(self):
        """SHA-256 over the canonical JSON form — the identity of the
        generated grid; same seed and knobs must reproduce it byte for
        byte."""
        text = json.dumps(self.to_dict(), sort_keys=True)
        return hashlib.sha256(text.encode()).hexdigest()


