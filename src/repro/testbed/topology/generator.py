"""Seeded, deterministic multi-region grid generation.

:func:`generate_topology` turns a :class:`GeneratorConfig` into a
validated :class:`~repro.testbed.topology.spec.TopologySpec`: regions
are split into core/metro/edge tiers, sites are dealt round-robin into
regions, gateway routers are wired core-mesh / metro-to-core /
edge-to-metro, and every capacity/latency/loss figure is drawn from a
per-tier band through one named
:class:`~repro.sim.random_streams.RandomStream` derived from
``(seed, name)`` — so the same config reproduces the same grid byte
for byte, and two configs differing only in ``seed`` produce
structurally similar but numerically independent grids.

Tier bands are disjoint by construction (edge uplinks top out below
the slowest metro uplink, metro below core), which is what makes the
spec's tier-monotonicity invariant hold for every seed rather than
merely most of them.
"""

import math

from repro.sim.random_streams import RandomStream
from repro.testbed.sites import SiteSpec
from repro.testbed.topology.spec import RegionSpec, TopologySpec, WanLinkSpec
from repro.units import GiB, MiB, mbit_per_s, milliseconds

__all__ = ["GeneratorConfig", "generate_topology"]

#: Site uplink bands per tier: (capacity Mbps lo/hi, latency ms lo/hi,
#: loss lo/hi).  Capacity bands are disjoint across tiers on purpose —
#: see the module docstring.
UPLINK_BANDS = {
    "edge": ((10.0, 90.0), (8.0, 40.0), (2e-4, 4e-3)),
    "metro": ((100.0, 950.0), (2.0, 10.0), (2e-5, 4e-4)),
    "core": ((1000.0, 10000.0), (0.5, 3.0), (1e-6, 5e-5)),
}

#: Backbone link bands keyed by the unordered tier pair of the two
#: gateway routers: (capacity Mbps lo/hi, latency ms lo/hi, loss lo/hi).
BACKBONE_BANDS = {
    ("core", "core"): ((2000.0, 10000.0), (5.0, 40.0), (1e-6, 1e-5)),
    ("core", "metro"): ((600.0, 2000.0), (2.0, 15.0), (1e-5, 1e-4)),
    ("metro", "metro"): ((400.0, 1200.0), (2.0, 12.0), (1e-5, 2e-4)),
    ("core", "edge"): ((100.0, 600.0), (1.0, 10.0), (5e-5, 1e-3)),
    ("edge", "metro"): ((100.0, 600.0), (1.0, 8.0), (5e-5, 1e-3)),
}

#: Host hardware menus (2005-era cluster nodes, as in the paper).
_CORE_MENU = (1, 2, 4)
_FREQUENCY_MENU = (0.9, 2.0, 2.8, 3.2)
_MEMORY_MENU = (256 * MiB, 512 * MiB, 1 * GiB, 2 * GiB)
_DISK_CAPACITY_MENU = (10e9, 60e9, 80e9, 200e9)
_DISK_BANDWIDTH_MENU = (25e6, 55e6, 60e6, 80e6)

#: LAN menus by tier (edge sites run older switches).
_LAN_CAPACITY = {
    "edge": mbit_per_s(100),
    "metro": mbit_per_s(1000),
    "core": mbit_per_s(1000),
}
_LAN_LATENCY = {"edge": 0.0002, "metro": 0.0001, "core": 0.0001}


class GeneratorConfig:
    """Knobs of one generated grid.  All defaults are deterministic.

    Parameters
    ----------
    n_sites:
        Total sites across all regions (>= 1).
    seed:
        Root seed; all randomness derives from ``(seed, name)``.
    name:
        Topology name (defaults to ``gen-<n_sites>``); part of the
        stream derivation, so two same-seed configs with different
        names draw independently.
    hosts_per_site:
        Either an int (every site identical) or an inclusive
        ``(lo, hi)`` band sampled per site.
    sites_per_region:
        Target region size; default ``ceil(sqrt(n_sites))`` clamped to
        [3, 40] — region counts stay in the tens at a thousand sites.
    region_plan:
        Explicit ``((tier, region_count), ...)`` overriding the
        fraction-based tier split (presets use this).
    core_fraction / metro_fraction:
        Share of regions assigned to the core / metro tiers when no
        explicit plan is given; the remainder is edge.
    metro_uplinks / edge_uplinks:
        Redundant parent links per metro region (into the core mesh)
        and per edge region (into the metro ring, or the core when no
        metro tier exists).
    latency_scale:
        Multiplier on every backbone latency band (transcontinental
        federations stretch distances without touching capacities).
    asymmetry:
        ``(lo, hi)`` band for the reverse-direction capacity factor of
        every backbone link.
    """

    def __init__(self, n_sites, seed=0, name=None, hosts_per_site=(1, 4),
                 sites_per_region=None, region_plan=None,
                 core_fraction=0.15, metro_fraction=0.35,
                 metro_uplinks=2, edge_uplinks=2, latency_scale=1.0,
                 asymmetry=(0.6, 1.0)):
        if n_sites < 1:
            raise ValueError("n_sites must be >= 1")
        if latency_scale <= 0:
            raise ValueError("latency_scale must be positive")
        self.n_sites = int(n_sites)
        self.seed = int(seed)
        self.name = name or f"gen-{n_sites}"
        if isinstance(hosts_per_site, int):
            hosts_per_site = (hosts_per_site, hosts_per_site)
        lo, hi = hosts_per_site
        if not 1 <= lo <= hi:
            raise ValueError("hosts_per_site band must satisfy 1 <= lo <= hi")
        self.hosts_per_site = (int(lo), int(hi))
        if sites_per_region is None:
            sites_per_region = min(40, max(3, math.isqrt(self.n_sites) + 1))
        if sites_per_region < 1:
            raise ValueError("sites_per_region must be >= 1")
        self.sites_per_region = int(sites_per_region)
        self.region_plan = (
            tuple((tier, int(count)) for tier, count in region_plan)
            if region_plan is not None else None
        )
        self.core_fraction = float(core_fraction)
        self.metro_fraction = float(metro_fraction)
        self.metro_uplinks = max(1, int(metro_uplinks))
        self.edge_uplinks = max(1, int(edge_uplinks))
        self.latency_scale = float(latency_scale)
        self.asymmetry = (float(asymmetry[0]), float(asymmetry[1]))


def _tier_plan(config):
    """((tier, count), ...) totalling the region count, core first."""
    if config.region_plan is not None:
        return config.region_plan
    n_regions = max(
        1, math.ceil(config.n_sites / config.sites_per_region)
    )
    if n_regions == 1:
        return (("core", 1),)
    core = max(1, round(config.core_fraction * n_regions))
    metro = max(
        1 if n_regions >= 3 else 0,
        round(config.metro_fraction * n_regions),
    )
    core = min(core, n_regions)
    metro = min(metro, n_regions - core)
    edge = n_regions - core - metro
    plan = [("core", core)]
    if metro:
        plan.append(("metro", metro))
    if edge:
        plan.append(("edge", edge))
    return tuple(plan)


def _deal_sites(config, regions):
    """Site count per region: round-robin so sizes differ by <= 1.

    Edge regions are the many/small ones, so the remainder is dealt
    from the end of the region list (edge first) to mimic real grids'
    long tail of small campuses.
    """
    n_regions = len(regions)
    base, extra = divmod(config.n_sites, n_regions)
    counts = [base] * n_regions
    for offset in range(extra):
        counts[n_regions - 1 - offset] += 1
    # Every region needs at least one site; steal from the largest.
    for index in range(n_regions):
        while counts[index] == 0:
            donor = max(range(n_regions), key=lambda i: counts[i])
            counts[donor] -= 1
            counts[index] += 1
    return counts


def _draw_site(stream, region_name, site_index, tier, config):
    """One SiteSpec with tier-banded uplink and menu hardware."""
    (cap_lo, cap_hi), (lat_lo, lat_hi), (loss_lo, loss_hi) = (
        UPLINK_BANDS[tier]
    )
    name = f"{region_name.upper()}S{site_index:02d}"
    lo, hi = config.hosts_per_site
    n_hosts = lo if lo == hi else stream.randint(lo, hi)
    hosts = tuple(f"{name.lower()}h{i}" for i in range(n_hosts))
    return SiteSpec(
        name=name,
        host_names=hosts,
        cores=stream.choice(_CORE_MENU),
        frequency_ghz=stream.choice(_FREQUENCY_MENU),
        memory_bytes=stream.choice(_MEMORY_MENU),
        disk_capacity=stream.choice(_DISK_CAPACITY_MENU),
        disk_bandwidth=stream.choice(_DISK_BANDWIDTH_MENU),
        lan_capacity=_LAN_CAPACITY[tier],
        lan_latency=_LAN_LATENCY[tier],
        wan_capacity=mbit_per_s(stream.uniform(cap_lo, cap_hi)),
        wan_latency=milliseconds(stream.uniform(lat_lo, lat_hi)),
        wan_loss_rate=stream.uniform(loss_lo, loss_hi),
    )


def _draw_link(stream, src_region, dst_region, config):
    """One asymmetric backbone link between two gateway routers."""
    pair = tuple(sorted((src_region.tier, dst_region.tier)))
    (cap_lo, cap_hi), (lat_lo, lat_hi), (loss_lo, loss_hi) = (
        BACKBONE_BANDS[pair]
    )
    capacity = mbit_per_s(stream.uniform(cap_lo, cap_hi))
    factor = stream.uniform(*config.asymmetry)
    latency = milliseconds(
        stream.uniform(lat_lo, lat_hi) * config.latency_scale
    )
    loss = stream.uniform(loss_lo, loss_hi)
    reverse_loss = stream.uniform(loss_lo, loss_hi)
    return WanLinkSpec(
        src=src_region.router_name,
        dst=dst_region.router_name,
        capacity=capacity,
        latency=min(latency, 0.9),
        loss_rate=loss,
        reverse_capacity=capacity * factor,
        reverse_loss_rate=reverse_loss,
    )


def generate_topology(config):
    """Generate and validate the grid described by ``config``."""
    stream = RandomStream(config.seed, f"topology/{config.name}")

    # -- regions and sites ------------------------------------------------
    plan = _tier_plan(config)
    region_shells = []     # (name, tier)
    tier_counter = {}
    for tier, count in plan:
        for _ in range(count):
            index = tier_counter.get(tier, 0)
            tier_counter[tier] = index + 1
            region_shells.append((f"{tier[0]}{index:02d}", tier))
    counts = _deal_sites(config, region_shells)

    regions = []
    for (region_name, tier), n_sites in zip(region_shells, counts):
        sites = tuple(
            _draw_site(stream, region_name, site_index, tier, config)
            for site_index in range(n_sites)
        )
        regions.append(RegionSpec(region_name, tier, sites))

    # -- backbone wiring ---------------------------------------------------
    by_tier = {}
    for region in regions:
        by_tier.setdefault(region.tier, []).append(region)
    cores = by_tier.get("core", [])
    metros = by_tier.get("metro", [])
    edges = by_tier.get("edge", [])

    links = []
    # Core regions form a full mesh.
    for i, src in enumerate(cores):
        for dst in cores[i + 1:]:
            links.append(_draw_link(stream, src, dst, config))
    # Metro regions multi-home into the core mesh.
    for offset, metro in enumerate(metros):
        parents = _pick_parents(
            stream, cores, config.metro_uplinks, offset
        )
        for parent in parents:
            links.append(_draw_link(stream, metro, parent, config))
    # Edge regions multi-home into the metro tier (or the core when no
    # metro tier exists).
    parent_pool = metros or cores
    for offset, edge in enumerate(edges):
        parents = _pick_parents(
            stream, parent_pool, config.edge_uplinks, offset
        )
        for parent in parents:
            links.append(_draw_link(stream, edge, parent, config))

    return TopologySpec(
        name=config.name,
        regions=regions,
        links=links,
        seed=config.seed,
        description=(
            f"generated: {len(regions)} regions "
            f"({', '.join(f'{t}={c}' for t, c in plan)}), "
            f"{config.n_sites} sites, seed {config.seed}"
        ),
    ).validate()


def _pick_parents(stream, pool, wanted, offset):
    """Choose uplink parents: a deterministic primary spread across the
    pool plus randomly sampled backups — every parent distinct."""
    if not pool:
        return []
    wanted = min(wanted, len(pool))
    primary = pool[offset % len(pool)]
    parents = [primary]
    if wanted > 1:
        backups = [region for region in pool if region is not primary]
        parents.extend(stream.sample(backups, wanted - 1))
    return parents
