"""Replica management: logical files, the catalog, and the manager.

The Data Grid's replica layer (Allcock et al.): a *logical file* is a
name for content; *physical replicas* of it live on concrete hosts.  The
:class:`ReplicaCatalog` records the logical→physical mapping, and the
:class:`ReplicaManager` creates/registers/deletes replicas, moving data
with GridFTP.
"""

from repro.replica.catalog import (
    LogicalFileNotFoundError,
    ReplicaCatalog,
    ReplicaEntry,
)
from repro.replica.logical_file import LogicalFile
from repro.replica.manager import ReplicaManager
from repro.replica.policy import AccessCountReplicationPolicy

__all__ = [
    "AccessCountReplicationPolicy",
    "LogicalFile",
    "LogicalFileNotFoundError",
    "ReplicaCatalog",
    "ReplicaEntry",
    "ReplicaManager",
]
