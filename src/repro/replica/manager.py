"""The replica manager: creates and destroys physical copies.

Combines GridFTP data movement with catalog bookkeeping — the "replica
management service [that takes] advantage of replica catalog with
GridFTP transfer" in the paper's background section.
"""

import logging

from repro.gridftp.gridftp import GridFtpClient

__all__ = ["ReplicaManager"]

logger = logging.getLogger("repro.replica.manager")


class ReplicaManager:
    """Creates, publishes and deletes replicas of logical files."""

    def __init__(self, grid, catalog, client_host_name, gsi=None,
                 health=None):
        self.grid = grid
        self.catalog = catalog
        self.client = GridFtpClient(grid, client_host_name, gsi=gsi)
        #: Optional ReplicaHealthRegistry; when present, freshly created
        #: replicas are audited and bad copies reported instead of
        #: silently joining the candidate set.
        self.health = health

    def __repr__(self):
        return f"<ReplicaManager via {self.client.host_name}>"

    def publish(self, logical_name, host_name, size_bytes=None,
                attributes=None):
        """Register an existing physical file as a replica.

        Creates the logical file on first publish; the physical file
        must already exist on ``host_name``'s filesystem.
        """
        host = self.grid.host(host_name)
        if logical_name not in host.filesystem:
            raise FileNotFoundError(
                f"{host_name} does not hold {logical_name!r}"
            )
        actual_size = host.filesystem.size_of(logical_name)
        if size_bytes is not None and size_bytes != actual_size:
            raise ValueError(
                f"declared size {size_bytes} != actual {actual_size}"
            )
        if logical_name not in self.catalog.logical_names():
            self.catalog.create_logical_file(
                logical_name, actual_size, attributes
            )
        entry = self.catalog.register_replica(logical_name, host_name)
        self.grid.obs.metrics.counter("replica.published").inc()
        logger.info("published %r at %s", logical_name, host_name)
        return entry

    def create_replica(self, logical_name, source_host, target_host,
                       parallelism=None):
        """Copy a replica to a new host and register it.

        A generator returning the new :class:`ReplicaEntry`.  Data moves
        server-to-server (third-party transfer) steered by the manager's
        client host.
        """
        locations = self.catalog.locations(logical_name)
        if not any(e.host_name == source_host for e in locations):
            raise ValueError(
                f"{source_host} holds no replica of {logical_name!r}"
            )
        yield from self.client.third_party(
            source_host, target_host, logical_name,
            parallelism=parallelism,
        )
        entry = self.catalog.register_replica(logical_name, target_host)
        self.grid.obs.metrics.counter("replica.created").inc()
        logger.info(
            "replicated %r from %s to %s", logical_name, source_host,
            target_host,
        )
        self.audit_replica(logical_name, target_host)
        return entry

    def audit_replica(self, logical_name, host_name):
        """Audit one physical copy against the published manifest.

        Returns True on a clean audit (or when no manifest/health
        registry is wired); a bad copy is reported to the health
        registry, which quarantines it past the failure threshold.
        """
        manifest = self.catalog.logical_file(logical_name).manifest
        if manifest is None:
            return True
        entry = next(
            (e for e in self.catalog.locations(logical_name)
             if e.host_name == host_name), None,
        )
        if entry is None:
            raise KeyError(
                f"{logical_name!r} has no replica at {host_name!r}"
            )
        fs = self.grid.host(host_name).filesystem
        if entry.physical_name not in fs or not manifest.audit(
            fs.stored(entry.physical_name)
        ):
            logger.warning(
                "replica of %r at %s failed its audit", logical_name,
                host_name,
            )
            if self.health is not None:
                self.health.record_failure(
                    logical_name, host_name, reason="audit"
                )
            return False
        if self.health is not None:
            self.health.record_success(logical_name, host_name)
        return True

    def delete_replica(self, logical_name, host_name):
        """Remove the physical file and its catalog entry.

        Refuses to delete the last remaining replica — that would lose
        the data.
        """
        locations = self.catalog.locations(logical_name)
        if len(locations) <= 1:
            raise ValueError(
                f"refusing to delete the last replica of {logical_name!r}"
            )
        entry = self.catalog.unregister_replica(logical_name, host_name)
        fs = self.grid.host(host_name).filesystem
        if entry.physical_name in fs:
            fs.delete(entry.physical_name)
        self.grid.obs.metrics.counter("replica.deleted").inc()
        logger.info("deleted replica of %r at %s", logical_name, host_name)
        return entry
