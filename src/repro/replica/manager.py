"""The replica manager: creates and destroys physical copies.

Combines GridFTP data movement with catalog bookkeeping — the "replica
management service [that takes] advantage of replica catalog with
GridFTP transfer" in the paper's background section.
"""

import logging

from repro.gridftp.gridftp import GridFtpClient

__all__ = ["ReplicaManager"]

logger = logging.getLogger("repro.replica.manager")


class ReplicaManager:
    """Creates, publishes and deletes replicas of logical files."""

    def __init__(self, grid, catalog, client_host_name, gsi=None):
        self.grid = grid
        self.catalog = catalog
        self.client = GridFtpClient(grid, client_host_name, gsi=gsi)

    def __repr__(self):
        return f"<ReplicaManager via {self.client.host_name}>"

    def publish(self, logical_name, host_name, size_bytes=None,
                attributes=None):
        """Register an existing physical file as a replica.

        Creates the logical file on first publish; the physical file
        must already exist on ``host_name``'s filesystem.
        """
        host = self.grid.host(host_name)
        if logical_name not in host.filesystem:
            raise FileNotFoundError(
                f"{host_name} does not hold {logical_name!r}"
            )
        actual_size = host.filesystem.size_of(logical_name)
        if size_bytes is not None and size_bytes != actual_size:
            raise ValueError(
                f"declared size {size_bytes} != actual {actual_size}"
            )
        if logical_name not in self.catalog.logical_names():
            self.catalog.create_logical_file(
                logical_name, actual_size, attributes
            )
        entry = self.catalog.register_replica(logical_name, host_name)
        self.grid.obs.metrics.counter("replica.published").inc()
        logger.info("published %r at %s", logical_name, host_name)
        return entry

    def create_replica(self, logical_name, source_host, target_host,
                       parallelism=None):
        """Copy a replica to a new host and register it.

        A generator returning the new :class:`ReplicaEntry`.  Data moves
        server-to-server (third-party transfer) steered by the manager's
        client host.
        """
        locations = self.catalog.locations(logical_name)
        if not any(e.host_name == source_host for e in locations):
            raise ValueError(
                f"{source_host} holds no replica of {logical_name!r}"
            )
        yield from self.client.third_party(
            source_host, target_host, logical_name,
            parallelism=parallelism,
        )
        entry = self.catalog.register_replica(logical_name, target_host)
        self.grid.obs.metrics.counter("replica.created").inc()
        logger.info(
            "replicated %r from %s to %s", logical_name, source_host,
            target_host,
        )
        return entry

    def delete_replica(self, logical_name, host_name):
        """Remove the physical file and its catalog entry.

        Refuses to delete the last remaining replica — that would lose
        the data.
        """
        locations = self.catalog.locations(logical_name)
        if len(locations) <= 1:
            raise ValueError(
                f"refusing to delete the last replica of {logical_name!r}"
            )
        entry = self.catalog.unregister_replica(logical_name, host_name)
        fs = self.grid.host(host_name).filesystem
        if entry.physical_name in fs:
            fs.delete(entry.physical_name)
        self.grid.obs.metrics.counter("replica.deleted").inc()
        logger.info("deleted replica of %r at %s", logical_name, host_name)
        return entry
