"""Dynamic replication policies.

Replica *selection* (the paper's contribution) chooses among existing
copies; replica *placement* decides when to make new ones.  The classic
companion policy — used by the paper's own later work and by OptorSim-
style studies — is access-count-driven replication: when a site keeps
fetching the same logical file from remote replicas, give that site's
cluster its own copy.
"""

__all__ = ["AccessCountReplicationPolicy"]


class AccessCountReplicationPolicy:
    """Replicate a file to a site after ``threshold`` remote fetches.

    Watch the access stream with :meth:`record_access`; when a site
    crosses the threshold for a file, :meth:`pending_replications`
    offers (logical_name, target_host) suggestions, and
    :meth:`replicate_pending` executes them through a
    :class:`ReplicaManager`.
    """

    def __init__(self, grid, catalog, manager, threshold=3,
                 target_picker=None, health=None):
        if threshold < 1:
            raise ValueError("threshold must be >= 1")
        self.grid = grid
        self.catalog = catalog
        self.manager = manager
        self.health = health if health is not None \
            else getattr(manager, "health", None)
        self.threshold = int(threshold)
        self.target_picker = target_picker or self._default_target
        self._counts = {}
        #: (logical_name, site) pairs already replicated or queued.
        self._handled = set()
        self._pending = []
        #: Completed replications: (logical_name, target_host).
        self.completed = []

    def __repr__(self):
        return (
            f"<AccessCountReplicationPolicy threshold={self.threshold} "
            f"{len(self.completed)} replications>"
        )

    def record_access(self, client_name, logical_name, remote):
        """Note one access.  ``remote`` is False for local-copy hits."""
        if not remote:
            return
        site = self.grid.host(client_name).site
        key = (logical_name, site)
        if key in self._handled:
            return
        self._counts[key] = self._counts.get(key, 0) + 1
        if self._counts[key] >= self.threshold:
            self._handled.add(key)
            target = self.target_picker(logical_name, site)
            if target is not None:
                self._pending.append((logical_name, target))

    def access_count(self, logical_name, site):
        return self._counts.get((logical_name, site), 0)

    def pending_replications(self):
        """Suggestions not yet executed, as (logical_name, host) pairs."""
        return list(self._pending)

    def replicate_pending(self, parallelism=None):
        """Execute queued replications; a generator returning the new
        :class:`ReplicaEntry` list."""
        created = []
        while self._pending:
            logical_name, target = self._pending.pop(0)
            locations = self.catalog.locations(logical_name)
            if any(e.host_name == target for e in locations):
                continue  # someone already put it there
            source = self._pick_source(logical_name, locations)
            if source is None:
                # Every source is down or quarantined; requeue the
                # suggestion for a later sweep rather than copying rot.
                self._pending.append((logical_name, target))
                break
            entry = yield from self.manager.create_replica(
                logical_name, source, target, parallelism=parallelism
            )
            created.append(entry)
            self.completed.append((logical_name, target))
        return created

    def _pick_source(self, logical_name, locations):
        """First live, non-quarantined replica host to copy from."""
        for entry in locations:
            host = self.grid.hosts.get(entry.host_name)
            if host is None or not host.is_up:
                continue
            if self.health is not None and self.health.is_quarantined(
                logical_name, entry.host_name
            ):
                continue
            return entry.host_name
        return None

    # -- default placement: first site host with space, no replica ----------

    def _default_target(self, logical_name, site):
        size = self.catalog.logical_file(logical_name).size_bytes
        holders = {
            e.host_name for e in self.catalog.locations(logical_name)
        }
        for host in self.grid.site_hosts(site):
            if host.name in holders:
                return None  # the site already has a copy
        for host in self.grid.site_hosts(site):
            if host.filesystem.free_bytes >= size:
                return host.name
        return None
