"""The replica catalog service.

Maps logical file names to the physical locations holding copies.  The
catalog runs on a host; remote queries are generators charging a round
trip (an LDAP search against the Globus replica catalog, in 2005 terms).
"""

import logging

from repro.integrity.manifest import ChecksumManifest, DEFAULT_BLOCK_BYTES
from repro.replica.logical_file import LogicalFile

__all__ = ["LogicalFileNotFoundError", "ReplicaCatalog", "ReplicaEntry"]

logger = logging.getLogger("repro.replica.catalog")


class LogicalFileNotFoundError(KeyError):
    """No such logical file in the catalog."""


class ReplicaEntry:
    """One physical replica location."""

    __slots__ = ("logical_name", "host_name", "physical_name",
                 "registered_at")

    def __init__(self, logical_name, host_name, physical_name,
                 registered_at):
        self.logical_name = logical_name
        self.host_name = host_name
        self.physical_name = physical_name
        self.registered_at = float(registered_at)

    def __repr__(self):
        return (
            f"<ReplicaEntry {self.logical_name!r} @ "
            f"{self.host_name}:{self.physical_name}>"
        )


class ReplicaCatalog:
    """The catalog service, attached to one grid host."""

    service_name = "replica-catalog"

    def __init__(self, grid, host_name):
        self.grid = grid
        self.host_name = host_name
        self._logical = {}
        self._replicas = {}
        self.queries_served = 0
        self._query_counter = grid.obs.metrics.counter("catalog.lookups")
        grid.register_service(host_name, self.service_name, self)

    def __repr__(self):
        return (
            f"<ReplicaCatalog on {self.host_name}, "
            f"{len(self._logical)} logical files>"
        )

    # -- registration (management-plane; instantaneous bookkeeping) -----------

    def create_logical_file(self, name, size_bytes, attributes=None,
                            block_bytes=DEFAULT_BLOCK_BYTES):
        """Register a new logical file name.

        Publish time is when the per-block checksum manifest is
        computed and attached — every later verification (data channel,
        repair audit) checks against this one authoritative manifest.
        """
        if name in self._logical:
            raise ValueError(f"logical file {name!r} already exists")
        lfn = LogicalFile(name, size_bytes, attributes)
        lfn.manifest = ChecksumManifest(
            name, size_bytes, block_bytes=block_bytes,
            version=lfn.version,
        )
        self._logical[name] = lfn
        self._replicas[name] = []
        return lfn

    def manifest_for(self, name):
        """The published checksum manifest of a logical file."""
        return self.logical_file(name).manifest

    def logical_file(self, name):
        if name not in self._logical:
            raise LogicalFileNotFoundError(name)
        return self._logical[name]

    def logical_names(self):
        return sorted(self._logical)

    def register_replica(self, logical_name, host_name,
                         physical_name=None):
        """Record that ``host_name`` holds a copy."""
        if logical_name not in self._logical:
            raise LogicalFileNotFoundError(logical_name)
        if not self.grid.topology.has_node(host_name):
            raise KeyError(f"unknown host {host_name!r}")
        physical_name = physical_name or logical_name
        for entry in self._replicas[logical_name]:
            if entry.host_name == host_name:
                raise ValueError(
                    f"{logical_name!r} already registered at {host_name}"
                )
        entry = ReplicaEntry(
            logical_name, host_name, physical_name, self.grid.sim.now
        )
        self._replicas[logical_name].append(entry)
        return entry

    def unregister_replica(self, logical_name, host_name):
        """Drop a location (the physical file itself is not touched)."""
        if logical_name not in self._logical:
            raise LogicalFileNotFoundError(logical_name)
        entries = self._replicas[logical_name]
        for entry in entries:
            if entry.host_name == host_name:
                entries.remove(entry)
                return entry
        raise KeyError(
            f"{logical_name!r} has no replica at {host_name!r}"
        )

    def locations(self, logical_name):
        """Physical locations of a logical file (instant, local view)."""
        if logical_name not in self._logical:
            raise LogicalFileNotFoundError(logical_name)
        return list(self._replicas[logical_name])

    def find(self, **criteria):
        """Logical files whose attributes match all criteria."""
        return [
            lfn for lfn in self._logical.values() if lfn.matches(**criteria)
        ]

    # -- remote query (charges network time) ------------------------------------

    def query_locations(self, client_name, logical_name):
        """Remote lookup; a generator returning the entry list."""
        if client_name != self.host_name:
            rtt = self.grid.path(client_name, self.host_name).rtt
            yield self.grid.sim.timeout(rtt)
        self.queries_served += 1
        self._query_counter.inc()
        entries = self.locations(logical_name)
        if logger.isEnabledFor(logging.DEBUG):
            logger.debug(
                "%s asked for %r: %d location(s)", client_name,
                logical_name, len(entries),
            )
        return entries
