"""Logical files: names for replicated content."""

from repro.units import to_megabytes

__all__ = ["LogicalFile"]


class LogicalFile:
    """A logical file name (LFN) with its size and free-form attributes.

    Attributes model the "characteristics of the desired data" that
    applications pass to the catalog in the paper's scenario (e.g. a
    biological database's species or release tag).
    """

    def __init__(self, name, size_bytes, attributes=None, version=0):
        if not name:
            raise ValueError("logical file needs a name")
        if size_bytes < 0:
            raise ValueError(f"negative size {size_bytes}")
        self.name = name
        self.size_bytes = float(size_bytes)
        self.attributes = dict(attributes or {})
        #: Content generation; replicas holding an older version fail
        #: manifest verification (stale_replica_version chaos).
        self.version = int(version)
        #: Per-block ChecksumManifest, attached by the catalog at
        #: publish time (None until then).
        self.manifest = None

    def __repr__(self):
        return (
            f"<LogicalFile {self.name!r} "
            f"{to_megabytes(self.size_bytes):.0f}MB>"
        )

    def matches(self, **criteria):
        """True if every criterion equals the stored attribute."""
        return all(
            self.attributes.get(key) == value
            for key, value in criteria.items()
        )
