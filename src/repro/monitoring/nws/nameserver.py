"""nws_nameserver: naming and discovery for sensors and memories."""

__all__ = ["NameServer"]


class NameServer:
    """Registry mapping (kind, name) to NWS component objects.

    Kinds follow the NWS process names: ``"sensor"`` and ``"memory"``.
    """

    KINDS = ("sensor", "memory")

    def __init__(self):
        self._registry = {kind: {} for kind in self.KINDS}

    def __repr__(self):
        counts = ", ".join(
            f"{kind}s={len(self._registry[kind])}" for kind in self.KINDS
        )
        return f"<NameServer {counts}>"

    def register(self, kind, name, component):
        """Register a component; duplicate names are an error."""
        self._check_kind(kind)
        if name in self._registry[kind]:
            raise ValueError(f"duplicate {kind} name {name!r}")
        self._registry[kind][name] = component

    def unregister(self, kind, name):
        self._check_kind(kind)
        if name not in self._registry[kind]:
            raise KeyError(f"no {kind} named {name!r}")
        del self._registry[kind][name]

    def lookup(self, kind, name):
        self._check_kind(kind)
        if name not in self._registry[kind]:
            raise KeyError(f"no {kind} named {name!r}")
        return self._registry[kind][name]

    def names(self, kind):
        self._check_kind(kind)
        return sorted(self._registry[kind])

    def _check_kind(self, kind):
        if kind not in self.KINDS:
            raise ValueError(
                f"unknown kind {kind!r}; expected one of {self.KINDS}"
            )
