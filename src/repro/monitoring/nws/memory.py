"""nws_memory: persistent storage of measurements plus forecasting.

Each stored series keeps a bounded :class:`SampleSeries` of raw readings
and a :class:`ForecasterBattery` updated on every arrival, so forecasts
are available instantly at query time (as in the real NWS, where the
forecaster library runs inside the memory/API layer).
"""

from repro.monitoring.nws.forecasting import ForecasterBattery, default_battery
from repro.obs.metrics import exponential_buckets
from repro.timeseries import SampleSeries

__all__ = ["NwsMemory"]

#: Absolute forecast errors span CPU fractions (~1e-3) to bandwidth in
#: bytes/second (~1e8), so the buckets cover eleven decades.
_ERROR_BUCKETS = exponential_buckets(1e-6, 10.0, 12)


class NwsMemory:
    """Stores measurement series and answers forecast queries."""

    def __init__(self, sim, name="memory", max_samples_per_series=1000,
                 battery_factory=default_battery):
        self.sim = sim
        self.name = name
        self.max_samples_per_series = max_samples_per_series
        self._battery_factory = battery_factory
        self._series = {}
        self._batteries = {}
        self._obs_on = sim.obs.enabled
        self._error_histograms = {}
        self._frozen = False
        #: Measurements dropped while the memory was frozen.
        self.measurements_dropped = 0

    def __repr__(self):
        state = " FROZEN" if self._frozen else ""
        return f"<NwsMemory {self.name}{state} {len(self._series)} series>"

    @property
    def is_frozen(self):
        """True while a stale-reading window is in force."""
        return self._frozen

    def freeze(self):
        """Drop all arriving measurements: every series goes stale.

        Models the chaos engine's stale-reading window — sensors keep
        probing (and consuming their noise streams) but nothing reaches
        the memory, so forecasts age in place.
        """
        self._frozen = True

    def thaw(self):
        """End a stale-reading window; storage resumes."""
        self._frozen = False

    def store(self, measurement):
        """Ingest one :class:`Measurement` (dropped while frozen)."""
        if self._frozen:
            self.measurements_dropped += 1
            return
        key = measurement.key
        series = self._series.get(key)
        if series is None:
            series = self._series[key] = SampleSeries(
                max_samples=self.max_samples_per_series
            )
            self._batteries[key] = ForecasterBattery(self._battery_factory())
        elif self._obs_on:
            # Score the previous forecast against the reading that just
            # arrived, before it is folded into the battery.
            prediction, _ = self._batteries[key].forecast()
            if prediction is not None:
                resource = measurement.resource
                histogram = self._error_histograms.get(resource)
                if histogram is None:
                    histogram = self.sim.obs.metrics.histogram(
                        "nws.forecast_abs_error", bounds=_ERROR_BUCKETS,
                        resource=resource,
                    )
                    self._error_histograms[resource] = histogram
                histogram.observe(abs(prediction - measurement.value))
        series.append(measurement.time, measurement.value)
        self._batteries[key].update(measurement.value)

    def keys(self):
        """All stored series keys."""
        return sorted(self._series, key=str)

    def has_series(self, key):
        return key in self._series

    def series(self, key):
        """Raw :class:`SampleSeries` for a key (KeyError if absent)."""
        return self._series[key]

    def latest(self, key):
        """Most recent (time, value) for a key, or None."""
        if key not in self._series:
            return None
        return self._series[key].latest

    def forecast(self, key):
        """(prediction, forecaster_name) for a key, or (None, None)."""
        if key not in self._batteries:
            return None, None
        return self._batteries[key].forecast()
