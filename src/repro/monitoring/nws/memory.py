"""nws_memory: persistent storage of measurements plus forecasting.

Each stored series keeps a bounded :class:`SampleSeries` of raw readings
and a :class:`ForecasterBattery` updated on every arrival, so forecasts
are available instantly at query time (as in the real NWS, where the
forecaster library runs inside the memory/API layer).
"""

from repro.monitoring.nws.forecasting import ForecasterBattery, default_battery
from repro.timeseries import SampleSeries

__all__ = ["NwsMemory"]


class NwsMemory:
    """Stores measurement series and answers forecast queries."""

    def __init__(self, sim, name="memory", max_samples_per_series=1000,
                 battery_factory=default_battery):
        self.sim = sim
        self.name = name
        self.max_samples_per_series = max_samples_per_series
        self._battery_factory = battery_factory
        self._series = {}
        self._batteries = {}

    def __repr__(self):
        return f"<NwsMemory {self.name} {len(self._series)} series>"

    def store(self, measurement):
        """Ingest one :class:`Measurement`."""
        key = measurement.key
        if key not in self._series:
            self._series[key] = SampleSeries(
                max_samples=self.max_samples_per_series
            )
            self._batteries[key] = ForecasterBattery(self._battery_factory())
        self._series[key].append(measurement.time, measurement.value)
        self._batteries[key].update(measurement.value)

    def keys(self):
        """All stored series keys."""
        return sorted(self._series, key=str)

    def has_series(self, key):
        return key in self._series

    def series(self, key):
        """Raw :class:`SampleSeries` for a key (KeyError if absent)."""
        return self._series[key]

    def latest(self, key):
        """Most recent (time, value) for a key, or None."""
        if key not in self._series:
            return None
        return self._series[key].latest

    def forecast(self, key):
        """(prediction, forecaster_name) for a key, or (None, None)."""
        if key not in self._batteries:
            return None, None
        return self._batteries[key].forecast()
