"""nws_sensor: periodic measurement processes.

Each sensor wakes at its period (with a phase jitter so fleets of
sensors do not synchronise), takes a reading of its resource, perturbs
it with measurement noise, and stores it in its configured memory.

Bandwidth is measured the way NWS really does it: with a small TCP
probe, so the reading reflects what a *new* connection would get through
current cross-traffic and contending flows, capped by the probe's own
TCP limits.
"""

import logging

from repro.monitoring.nws.scheduler import scheduler_for, sensor_driver_mode
from repro.monitoring.nws.series import Measurement, series_key
from repro.sim import Interrupt
from repro.sim.events import Timeout

logger = logging.getLogger("repro.monitoring.nws.sensor")

__all__ = [
    "BandwidthSensor",
    "CpuSensor",
    "FreeMemorySensor",
    "LatencySensor",
    "Sensor",
]


class Sensor:
    """Base periodic sensor."""

    resource = "abstract"

    def __init__(self, sim, memory, source, target=None, period=10.0,
                 noise=0.02, stream=None, nameserver=None,
                 autostart=True, phase=None):
        if period <= 0:
            raise ValueError("period must be positive")
        if noise < 0:
            raise ValueError("noise must be non-negative")
        if phase is not None and not 0.0 <= phase < period:
            raise ValueError(
                f"phase must lie in [0, period), got {phase}"
            )
        self.sim = sim
        self.memory = memory
        self.source = source
        self.target = target
        self.period = float(period)
        self.noise = float(noise)
        self.stream = stream or sim.streams.get(
            f"nws/{self.resource}/{source}/{target}"
        )
        #: Number of measurements taken.
        self.measurements_taken = 0
        #: While True the sensor ticks but records nothing (a chaos
        #: blackout window; forecasts go stale downstream).
        self.paused = False
        #: Ticks skipped while paused.
        self.measurements_skipped = 0
        self._measurement_counter = sim.obs.metrics.counter(
            "nws.measurements", resource=self.resource
        )
        if nameserver is not None:
            nameserver.register("sensor", self.sensor_name, self)
        #: Fixed tick phase; None draws a random one (solo driving).
        self.phase = phase
        #: True while this sensor ticks on its own timer (either
        #: driver); external schedulers (Clique) require it False.
        self.driven = False
        #: Raised by stop(); the batch driver checks it before ticking.
        self._driver_stopped = False
        #: Reusable bound callback for batch-driver timers (one
        #: allocation for the sensor's whole lifetime).
        self._solo_tick_cb = self._solo_tick
        #: Measurement-noise clamp bounds (fixed once noise is set).
        self._noise_low = 1.0 - 4 * self.noise
        self._noise_high = 1.0 + 4 * self.noise
        #: The sensor's generator process under the legacy process
        #: driver; None under the batch driver or when driven
        #: externally (e.g. by a Clique).
        self.process = None
        if autostart:
            self.driven = True
            if sensor_driver_mode() == "process":
                self.process = sim.process(self._run())
            else:
                scheduler_for(sim).attach(self, phase)

    def __repr__(self):
        return f"<{type(self).__name__} {self.sensor_name}>"

    @property
    def sensor_name(self):
        if self.target is None:
            return f"{self.resource}@{self.source}"
        return f"{self.resource}@{self.source}->{self.target}"

    @property
    def key(self):
        return series_key(self.resource, self.source, self.target)

    def read(self):
        """Take one noiseless reading (overridden per resource)."""
        raise NotImplementedError

    def _perturb(self, value):
        if self.noise == 0.0:
            return value
        factor = self.stream.truncated_normal(
            1.0, self.noise, self._noise_low, self._noise_high
        )
        return value * factor

    def measure_once(self):
        """Take and store one measurement immediately."""
        value = self._perturb(self.read())
        self.memory.store(
            Measurement(
                self.resource, self.source, self.target,
                self.sim.now, value,
            )
        )
        self.measurements_taken += 1
        self._measurement_counter.inc()
        if logger.isEnabledFor(logging.DEBUG):
            logger.debug(
                "%s measured %.6g at t=%.1f", self.sensor_name, value,
                self.sim.now,
            )
        return value

    def tick(self):
        """One driver tick: measure, or skip while blacked out."""
        if self.paused:
            self.measurements_skipped += 1
        else:
            self.measure_once()

    def _solo_tick(self, _event):
        """Batch-driver timer callback: tick, then re-arm the timer.

        Event-for-event identical to one loop turn of :meth:`_run` under
        the process driver (one ``Timeout`` per period), minus the
        generator machinery.
        """
        if self._driver_stopped:
            return
        if self.paused:
            self.measurements_skipped += 1
        else:
            self.measure_once()
        timer = Timeout(self.sim, self.period)
        timer.callbacks.append(self._solo_tick_cb)

    def _run(self):
        # Random phase so co-located sensors interleave (a fixed
        # `phase` pins it instead).
        if self.phase is None:
            delay = self.stream.uniform(0.0, self.period)
        else:
            delay = self.phase
        yield self.sim.timeout(delay)
        try:
            while True:
                self.tick()
                yield self.sim.timeout(self.period)
        except Interrupt:
            return

    def pause(self):
        """Black out the sensor: it keeps ticking but records nothing.

        The measurement-noise stream is *not* drawn while paused, so a
        blackout window consumes no randomness and downstream streams
        stay aligned with the campaign's seeded schedule.
        """
        self.paused = True

    def resume(self):
        """End a blackout; the next tick records normally."""
        self.paused = False

    def stop(self):
        self._driver_stopped = True
        if self.process is not None and self.process.is_alive:
            self.process.interrupt(cause="stopped")


class BandwidthSensor(Sensor):
    """End-to-end attainable TCP bandwidth from ``source`` to ``target``.

    Reads what a single fresh TCP probe stream would achieve: the
    path's max-min fair share under current traffic, capped by the TCP
    window/loss limits.
    """

    resource = "bandwidth"

    def __init__(self, sim, memory, grid, source, target, period=10.0,
                 noise=0.05, stream=None, nameserver=None,
                 autostart=True, phase=None):
        self.grid = grid
        super().__init__(
            sim, memory, source, target, period=period, noise=noise,
            stream=stream, nameserver=nameserver, autostart=autostart,
            phase=phase,
        )

    def read(self):
        grid = self.grid
        path = grid.path(self.source, self.target)
        cap = grid.tcp_model.stream_cap(path)
        return grid.network.probe_rate(
            self.source, self.target, cap=cap, path=path
        )


class LatencySensor(Sensor):
    """Round-trip latency from ``source`` to ``target``."""

    resource = "latency"

    def __init__(self, sim, memory, grid, source, target, period=10.0,
                 noise=0.02, stream=None, nameserver=None, phase=None):
        self.grid = grid
        super().__init__(
            sim, memory, source, target, period=period, noise=noise,
            stream=stream, nameserver=nameserver, phase=phase,
        )

    def read(self):
        return self.grid.path(self.source, self.target).rtt


class CpuSensor(Sensor):
    """Available CPU fraction on one host."""

    resource = "cpu"

    def __init__(self, sim, memory, host, period=10.0, noise=0.02,
                 stream=None, nameserver=None, phase=None):
        self.host = host
        super().__init__(
            sim, memory, host.name, None, period=period, noise=noise,
            stream=stream, nameserver=nameserver, phase=phase,
        )

    def read(self):
        return self.host.cpu.idle_fraction

    def _perturb(self, value):
        return min(1.0, max(0.0, super()._perturb(value)))


class FreeMemorySensor(Sensor):
    """Free (non-paged) memory on one host, bytes.

    The reproduction does not model memory pressure, so this reports a
    noisy constant — present for NWS interface completeness.
    """

    resource = "memory"

    def __init__(self, sim, memory, host, free_fraction=0.6, period=30.0,
                 noise=0.05, stream=None, nameserver=None, phase=None):
        if not 0.0 <= free_fraction <= 1.0:
            raise ValueError("free_fraction must be in [0, 1]")
        self.host = host
        self.free_fraction = float(free_fraction)
        super().__init__(
            sim, memory, host.name, None, period=period, noise=noise,
            stream=stream, nameserver=nameserver, phase=phase,
        )

    def read(self):
        return self.host.memory_bytes * self.free_fraction
