"""nws_sensor: periodic measurement processes.

Each sensor wakes at its period (with a phase jitter so fleets of
sensors do not synchronise), takes a reading of its resource, perturbs
it with measurement noise, and stores it in its configured memory.

Bandwidth is measured the way NWS really does it: with a small TCP
probe, so the reading reflects what a *new* connection would get through
current cross-traffic and contending flows, capped by the probe's own
TCP limits.
"""

import logging

from repro.monitoring.nws.series import Measurement, series_key
from repro.sim import Interrupt

logger = logging.getLogger("repro.monitoring.nws.sensor")

__all__ = [
    "BandwidthSensor",
    "CpuSensor",
    "FreeMemorySensor",
    "LatencySensor",
    "Sensor",
]


class Sensor:
    """Base periodic sensor."""

    resource = "abstract"

    def __init__(self, sim, memory, source, target=None, period=10.0,
                 noise=0.02, stream=None, nameserver=None,
                 autostart=True):
        if period <= 0:
            raise ValueError("period must be positive")
        if noise < 0:
            raise ValueError("noise must be non-negative")
        self.sim = sim
        self.memory = memory
        self.source = source
        self.target = target
        self.period = float(period)
        self.noise = float(noise)
        self.stream = stream or sim.streams.get(
            f"nws/{self.resource}/{source}/{target}"
        )
        #: Number of measurements taken.
        self.measurements_taken = 0
        #: While True the sensor ticks but records nothing (a chaos
        #: blackout window; forecasts go stale downstream).
        self.paused = False
        #: Ticks skipped while paused.
        self.measurements_skipped = 0
        self._measurement_counter = sim.obs.metrics.counter(
            "nws.measurements", resource=self.resource
        )
        if nameserver is not None:
            nameserver.register("sensor", self.sensor_name, self)
        #: None when driven externally (e.g. by a Clique).
        self.process = sim.process(self._run()) if autostart else None

    def __repr__(self):
        return f"<{type(self).__name__} {self.sensor_name}>"

    @property
    def sensor_name(self):
        if self.target is None:
            return f"{self.resource}@{self.source}"
        return f"{self.resource}@{self.source}->{self.target}"

    @property
    def key(self):
        return series_key(self.resource, self.source, self.target)

    def read(self):
        """Take one noiseless reading (overridden per resource)."""
        raise NotImplementedError

    def _perturb(self, value):
        if self.noise == 0.0:
            return value
        factor = self.stream.truncated_normal(
            1.0, self.noise, 1.0 - 4 * self.noise, 1.0 + 4 * self.noise
        )
        return value * factor

    def measure_once(self):
        """Take and store one measurement immediately."""
        value = self._perturb(self.read())
        self.memory.store(
            Measurement(
                self.resource, self.source, self.target,
                self.sim.now, value,
            )
        )
        self.measurements_taken += 1
        self._measurement_counter.inc()
        if logger.isEnabledFor(logging.DEBUG):
            logger.debug(
                "%s measured %.6g at t=%.1f", self.sensor_name, value,
                self.sim.now,
            )
        return value

    def _run(self):
        # Random phase so co-located sensors interleave.
        yield self.sim.timeout(self.stream.uniform(0.0, self.period))
        try:
            while True:
                if self.paused:
                    self.measurements_skipped += 1
                else:
                    self.measure_once()
                yield self.sim.timeout(self.period)
        except Interrupt:
            return

    def pause(self):
        """Black out the sensor: it keeps ticking but records nothing.

        The measurement-noise stream is *not* drawn while paused, so a
        blackout window consumes no randomness and downstream streams
        stay aligned with the campaign's seeded schedule.
        """
        self.paused = True

    def resume(self):
        """End a blackout; the next tick records normally."""
        self.paused = False

    def stop(self):
        if self.process is not None and self.process.is_alive:
            self.process.interrupt(cause="stopped")


class BandwidthSensor(Sensor):
    """End-to-end attainable TCP bandwidth from ``source`` to ``target``.

    Reads what a single fresh TCP probe stream would achieve: the
    path's max-min fair share under current traffic, capped by the TCP
    window/loss limits.
    """

    resource = "bandwidth"

    def __init__(self, sim, memory, grid, source, target, period=10.0,
                 noise=0.05, stream=None, nameserver=None,
                 autostart=True):
        self.grid = grid
        super().__init__(
            sim, memory, source, target, period=period, noise=noise,
            stream=stream, nameserver=nameserver, autostart=autostart,
        )

    def read(self):
        path = self.grid.path(self.source, self.target)
        cap = self.grid.tcp_model.stream_cap(path)
        return self.grid.network.probe_rate(self.source, self.target, cap=cap)


class LatencySensor(Sensor):
    """Round-trip latency from ``source`` to ``target``."""

    resource = "latency"

    def __init__(self, sim, memory, grid, source, target, period=10.0,
                 noise=0.02, stream=None, nameserver=None):
        self.grid = grid
        super().__init__(
            sim, memory, source, target, period=period, noise=noise,
            stream=stream, nameserver=nameserver,
        )

    def read(self):
        return self.grid.path(self.source, self.target).rtt


class CpuSensor(Sensor):
    """Available CPU fraction on one host."""

    resource = "cpu"

    def __init__(self, sim, memory, host, period=10.0, noise=0.02,
                 stream=None, nameserver=None):
        self.host = host
        super().__init__(
            sim, memory, host.name, None, period=period, noise=noise,
            stream=stream, nameserver=nameserver,
        )

    def read(self):
        return self.host.cpu.idle_fraction

    def _perturb(self, value):
        return min(1.0, max(0.0, super()._perturb(value)))


class FreeMemorySensor(Sensor):
    """Free (non-paged) memory on one host, bytes.

    The reproduction does not model memory pressure, so this reports a
    noisy constant — present for NWS interface completeness.
    """

    resource = "memory"

    def __init__(self, sim, memory, host, free_fraction=0.6, period=30.0,
                 noise=0.05, stream=None, nameserver=None):
        if not 0.0 <= free_fraction <= 1.0:
            raise ValueError("free_fraction must be in [0, 1]")
        self.host = host
        self.free_fraction = float(free_fraction)
        super().__init__(
            sim, memory, host.name, None, period=period, noise=noise,
            stream=stream, nameserver=nameserver,
        )

    def read(self):
        return self.host.memory_bytes * self.free_fraction
