"""Batched sensor driving: timer events without per-sensor processes.

Every autostarted sensor used to be its own generator process: a
bootstrap event, a generator frame, and one ``Timeout`` per tick routed
through the process machinery (``send``/``throw``, wait bookkeeping).
On a grid where sensors dominate the event mix, that machinery is pure
overhead — each tick does nothing but call ``measure_once`` and sleep
again.

:class:`SensorScheduler` drives sensors with bare timer callbacks
instead.  Two modes per sensor:

* ``phase=None`` (the default, and the only behaviour the legacy
  process driver had): the sensor is driven *solo*, and the event
  pattern replicates the process driver event-for-event — one urgent
  bootstrap ``Event`` at attach (exactly what ``Process.__init__``
  schedules), the phase drawn from the sensor's own stream when that
  bootstrap pops (exactly where the generator's first line drew it),
  then one ``Timeout`` per tick.  Same event classes, counts, times,
  priorities and stream draws, so the same-seed trace digest is
  byte-identical whichever driver runs (``REPRO_SENSOR_DRIVER=batch``
  or ``process``).
* explicit ``phase``: sensors sharing ``(period, phase)`` join one
  *tick group* — a single ``Timeout`` per period fires them all in
  attach order.  This is the new N-sensors-one-timer capability; it has
  no legacy equivalent (the process driver approximates it with one
  solo process per sensor at the same fixed phase).

The scheduler itself is per-simulator and created on demand; it holds
no simulation state beyond its groups, and a sensor leaves the rotation
by its ``stop()`` raising the ``_driver_stopped`` flag the callbacks
check.
"""

import os
from weakref import WeakKeyDictionary

from repro.sim.events import PRIORITY_URGENT, Event, Timeout

__all__ = ["SensorScheduler", "scheduler_for", "sensor_driver_mode"]

#: One scheduler per simulator, created lazily; weak keys so schedulers
#: die with their simulator.
_SCHEDULERS = WeakKeyDictionary()


def scheduler_for(sim):
    """The (lazily created) :class:`SensorScheduler` of ``sim``."""
    scheduler = _SCHEDULERS.get(sim)
    if scheduler is None:
        scheduler = SensorScheduler(sim)
        _SCHEDULERS[sim] = scheduler
    return scheduler


def sensor_driver_mode():
    """Driver selected by REPRO_SENSOR_DRIVER: ``batch`` or ``process``."""
    mode = os.environ.get("REPRO_SENSOR_DRIVER", "batch")
    if mode not in ("batch", "process"):
        raise ValueError(
            f"unknown sensor driver {mode!r} "
            "(expected 'batch' or 'process')"
        )
    return mode


class _TickGroup:
    """Sensors sharing (period, phase): one Timeout drives them all."""

    __slots__ = ("sim", "period", "phase", "sensors", "ticks")

    def __init__(self, sim, period, phase):
        self.sim = sim
        self.period = period
        self.phase = phase
        self.sensors = []
        #: Group ticks fired so far (diagnostics).
        self.ticks = 0
        self._schedule(phase)

    def _schedule(self, delay):
        timer = Timeout(self.sim, delay)
        timer.callbacks.append(self._tick)

    def _tick(self, _event):
        live = [
            sensor for sensor in self.sensors
            if not sensor._driver_stopped
        ]
        self.sensors = live
        self.ticks += 1
        for sensor in live:
            sensor.tick()
        self._schedule(self.period)


class SensorScheduler:
    """Per-simulator registry of driven sensors and their tick groups."""

    def __init__(self, sim):
        self.sim = sim
        #: (period, phase) -> _TickGroup for phase-sharing sensors.
        self._groups = {}

    def __repr__(self):
        return f"<SensorScheduler {len(self._groups)} tick groups>"

    def attach(self, sensor, phase=None):
        """Start driving ``sensor``.

        ``phase=None`` drives it solo with the legacy-identical event
        pattern; an explicit phase joins the shared ``(period, phase)``
        tick group, creating it (first tick ``phase`` from now) if
        needed.
        """
        if phase is None:
            self._attach_solo(sensor)
            return
        key = (sensor.period, float(phase))
        group = self._groups.get(key)
        if group is None:
            group = _TickGroup(self.sim, sensor.period, float(phase))
            self._groups[key] = group
        group.sensors.append(sensor)

    # -- solo driving (legacy event pattern) -------------------------------

    def _attach_solo(self, sensor):
        # Mirrors Process.__init__'s bootstrap: one urgent plain Event
        # at the current instant.
        boot = Event(self.sim)
        boot._ok = True
        boot._value = None
        boot.callbacks.append(lambda _ev: self._boot(sensor))
        self.sim.schedule(boot, priority=PRIORITY_URGENT)

    def _boot(self, sensor):
        if sensor._driver_stopped:
            return
        # Mirrors the generator's first line: the phase jitter is drawn
        # from the sensor's own stream when the bootstrap pops, keeping
        # every stream draw aligned with the process driver.  From here
        # the sensor re-arms itself (one bound callback, reused — no
        # per-tick closure).
        delay = sensor.stream.uniform(0.0, sensor.period)
        timer = Timeout(self.sim, delay)
        timer.callbacks.append(sensor._solo_tick_cb)
