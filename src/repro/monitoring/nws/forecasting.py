"""NWS-style forecasting: a battery of predictors, adaptively selected.

NWS's insight is that no single predictor wins on all resource series,
so it runs many cheap ones in parallel and, for each series, reports the
prediction of whichever has the lowest accumulated error so far.  The
battery here mirrors the NWS set: last value, running mean, sliding
means and medians of several window lengths, and exponential smoothing
with several gains.

The predictors sit on the sensor hot path (every stored measurement
scores and updates the whole battery), so their internals favour O(1)
amortised work: windows are deques, and the median keeps its window in
a bisect-maintained sorted list instead of re-sorting per prediction.
Every optimisation here is value-exact — the reported predictions are
bit-identical to the straightforward definitions (``statistics.median``
over the window, ``math.fsum`` over the window), which the same-seed
trace digests lock in.
"""

import math
from bisect import bisect_left, insort
from collections import deque

__all__ = [
    "ExponentialSmoothing",
    "Forecaster",
    "ForecasterBattery",
    "LastValue",
    "MedianWindow",
    "RunningMean",
    "SlidingWindowMean",
    "default_battery",
]


class Forecaster:
    """One-step-ahead predictor over a scalar series."""

    __slots__ = ()

    name = "forecaster"

    def update(self, value):
        """Feed the next observation."""
        raise NotImplementedError

    def predict(self):
        """Predict the next observation; None until warmed up."""
        raise NotImplementedError

    def observe(self, value):
        """Score-and-ingest in one call: the pending prediction, then
        :meth:`update`.

        Semantically exactly ``predict()`` followed by ``update(value)``
        — the built-in forecasters override it to skip the second method
        dispatch on the battery's hot loop; subclasses get this default.
        """
        pending = self.predict()
        self.update(value)
        return pending


class LastValue(Forecaster):
    """Predicts the most recent observation."""

    __slots__ = ("_last",)

    name = "last-value"

    def __init__(self):
        self._last = None

    def update(self, value):
        self._last = value

    def predict(self):
        return self._last

    def observe(self, value):
        pending = self._last
        self._last = value
        return pending


class RunningMean(Forecaster):
    """Predicts the mean of everything seen so far."""

    __slots__ = ("_sum", "_count")

    name = "running-mean"

    def __init__(self):
        self._sum = 0.0
        self._count = 0

    def update(self, value):
        self._sum += value
        self._count += 1

    def predict(self):
        if self._count == 0:
            return None
        return self._sum / self._count

    def observe(self, value):
        count = self._count
        pending = self._sum / count if count else None
        self._sum += value
        self._count = count + 1
        return pending


class SlidingWindowMean(Forecaster):
    """Predicts the mean of the last ``window`` observations.

    The mean is a fresh ``math.fsum`` over the window — a running sum
    would drift from it in the last bits — so the prediction stays
    exactly the textbook value.
    """

    __slots__ = ("window", "name", "_values")

    def __init__(self, window):
        if window < 1:
            raise ValueError("window must be >= 1")
        self.window = int(window)
        self.name = f"mean-{self.window}"
        self._values = deque()

    def update(self, value):
        values = self._values
        values.append(value)
        if len(values) > self.window:
            values.popleft()

    def predict(self):
        values = self._values
        if not values:
            return None
        return math.fsum(values) / len(values)

    def observe(self, value):
        values = self._values
        pending = math.fsum(values) / len(values) if values else None
        values.append(value)
        if len(values) > self.window:
            values.popleft()
        return pending


class MedianWindow(Forecaster):
    """Predicts the median of the last ``window`` observations.

    The window is kept twice: arrival order (to know which value falls
    out) and a sorted list maintained by ``insort``/``bisect_left``, so
    predicting is an index instead of a per-call sort.  The even/odd
    index arithmetic replicates ``statistics.median`` exactly.
    """

    __slots__ = ("window", "name", "_values", "_sorted")

    def __init__(self, window):
        if window < 1:
            raise ValueError("window must be >= 1")
        self.window = int(window)
        self.name = f"median-{self.window}"
        self._values = deque()
        self._sorted = []

    def update(self, value):
        values = self._values
        values.append(value)
        insort(self._sorted, value)
        if len(values) > self.window:
            old = values.popleft()
            del self._sorted[bisect_left(self._sorted, old)]

    def predict(self):
        ordered = self._sorted
        n = len(ordered)
        if n == 0:
            return None
        mid = n // 2
        if n % 2:
            return ordered[mid]
        return (ordered[mid - 1] + ordered[mid]) / 2

    def observe(self, value):
        pending = self.predict()
        self.update(value)
        return pending


class ExponentialSmoothing(Forecaster):
    """Predicts an exponentially smoothed value with gain ``alpha``."""

    __slots__ = ("alpha", "name", "_state")

    def __init__(self, alpha):
        if not 0.0 < alpha <= 1.0:
            raise ValueError("alpha must be in (0, 1]")
        self.alpha = float(alpha)
        self.name = f"exp-{self.alpha:g}"
        self._state = None

    def update(self, value):
        if self._state is None:
            self._state = value
        else:
            self._state = self.alpha * value + (1 - self.alpha) * self._state

    def predict(self):
        return self._state

    def observe(self, value):
        pending = self._state
        if pending is None:
            self._state = value
        else:
            self._state = self.alpha * value + (1 - self.alpha) * pending
        return pending


def default_battery():
    """The predictor set NWS ships by default (modulo exact constants)."""
    return [
        LastValue(),
        RunningMean(),
        SlidingWindowMean(5),
        SlidingWindowMean(21),
        MedianWindow(5),
        MedianWindow(21),
        ExponentialSmoothing(0.1),
        ExponentialSmoothing(0.3),
        ExponentialSmoothing(0.7),
    ]


class ForecasterBattery:
    """Runs every forecaster and reports the historically best one.

    Before each update, every forecaster's pending prediction is scored
    against the arriving truth (absolute error, accumulated as MAE);
    :meth:`forecast` returns the prediction of the forecaster with the
    lowest MAE so far.
    """

    def __init__(self, forecasters=None):
        if forecasters is None:
            forecasters = default_battery()
        if not forecasters:
            raise ValueError("need at least one forecaster")
        self.forecasters = list(forecasters)
        # Scores are index-parallel to ``forecasters`` and the observe
        # methods are prebound: update() runs once per measurement on
        # every sensor in the grid, so the per-forecaster constant
        # factor (attribute lookups, name hashing) is hot-path cost.
        self._observers = [f.observe for f in self.forecasters]
        self._abs_error = [0.0] * len(self.forecasters)
        self._scored = [0] * len(self.forecasters)
        self._index = {
            f.name: i for i, f in enumerate(self.forecasters)
        }
        self.observations = 0

    def __repr__(self):
        return (
            f"<ForecasterBattery {len(self.forecasters)} predictors, "
            f"{self.observations} observations>"
        )

    def update(self, value):
        """Score pending predictions against ``value``, then ingest it."""
        abs_error = self._abs_error
        scored = self._scored
        index = 0
        for observe in self._observers:
            pending = observe(value)
            if pending is not None:
                abs_error[index] += abs(pending - value)
                scored[index] += 1
            index += 1
        self.observations += 1

    def mae(self, name):
        """Mean absolute error of one forecaster (inf until scored)."""
        index = self._index[name]
        if self._scored[index] == 0:
            return math.inf
        return self._abs_error[index] / self._scored[index]

    def _mae_at(self, index):
        if self._scored[index] == 0:
            return math.inf
        return self._abs_error[index] / self._scored[index]

    def _best(self):
        """Lowest-MAE forecaster (ties: battery order, as ``min`` breaks
        them)."""
        forecasters = self.forecasters
        best = forecasters[0]
        best_mae = self._mae_at(0)
        for index in range(1, len(forecasters)):
            mae = self._mae_at(index)
            if mae < best_mae:
                best = forecasters[index]
                best_mae = mae
        return best

    def best_name(self):
        """Name of the forecaster with the lowest MAE (ties: battery order)."""
        return self._best().name

    def forecast(self):
        """(prediction, forecaster_name); (None, name) until warmed up."""
        best = self._best()
        return best.predict(), best.name
