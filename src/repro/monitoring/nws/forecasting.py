"""NWS-style forecasting: a battery of predictors, adaptively selected.

NWS's insight is that no single predictor wins on all resource series,
so it runs many cheap ones in parallel and, for each series, reports the
prediction of whichever has the lowest accumulated error so far.  The
battery here mirrors the NWS set: last value, running mean, sliding
means and medians of several window lengths, and exponential smoothing
with several gains.
"""

import math
import statistics

__all__ = [
    "ExponentialSmoothing",
    "Forecaster",
    "ForecasterBattery",
    "LastValue",
    "MedianWindow",
    "RunningMean",
    "SlidingWindowMean",
    "default_battery",
]


class Forecaster:
    """One-step-ahead predictor over a scalar series."""

    name = "forecaster"

    def update(self, value):
        """Feed the next observation."""
        raise NotImplementedError

    def predict(self):
        """Predict the next observation; None until warmed up."""
        raise NotImplementedError


class LastValue(Forecaster):
    """Predicts the most recent observation."""

    name = "last-value"

    def __init__(self):
        self._last = None

    def update(self, value):
        self._last = value

    def predict(self):
        return self._last


class RunningMean(Forecaster):
    """Predicts the mean of everything seen so far."""

    name = "running-mean"

    def __init__(self):
        self._sum = 0.0
        self._count = 0

    def update(self, value):
        self._sum += value
        self._count += 1

    def predict(self):
        if self._count == 0:
            return None
        return self._sum / self._count


class SlidingWindowMean(Forecaster):
    """Predicts the mean of the last ``window`` observations."""

    def __init__(self, window):
        if window < 1:
            raise ValueError("window must be >= 1")
        self.window = int(window)
        self.name = f"mean-{self.window}"
        self._values = []

    def update(self, value):
        self._values.append(value)
        if len(self._values) > self.window:
            del self._values[0]

    def predict(self):
        if not self._values:
            return None
        return math.fsum(self._values) / len(self._values)


class MedianWindow(Forecaster):
    """Predicts the median of the last ``window`` observations."""

    def __init__(self, window):
        if window < 1:
            raise ValueError("window must be >= 1")
        self.window = int(window)
        self.name = f"median-{self.window}"
        self._values = []

    def update(self, value):
        self._values.append(value)
        if len(self._values) > self.window:
            del self._values[0]

    def predict(self):
        if not self._values:
            return None
        return statistics.median(self._values)


class ExponentialSmoothing(Forecaster):
    """Predicts an exponentially smoothed value with gain ``alpha``."""

    def __init__(self, alpha):
        if not 0.0 < alpha <= 1.0:
            raise ValueError("alpha must be in (0, 1]")
        self.alpha = float(alpha)
        self.name = f"exp-{self.alpha:g}"
        self._state = None

    def update(self, value):
        if self._state is None:
            self._state = value
        else:
            self._state = self.alpha * value + (1 - self.alpha) * self._state

    def predict(self):
        return self._state


def default_battery():
    """The predictor set NWS ships by default (modulo exact constants)."""
    return [
        LastValue(),
        RunningMean(),
        SlidingWindowMean(5),
        SlidingWindowMean(21),
        MedianWindow(5),
        MedianWindow(21),
        ExponentialSmoothing(0.1),
        ExponentialSmoothing(0.3),
        ExponentialSmoothing(0.7),
    ]


class ForecasterBattery:
    """Runs every forecaster and reports the historically best one.

    Before each update, every forecaster's pending prediction is scored
    against the arriving truth (absolute error, accumulated as MAE);
    :meth:`forecast` returns the prediction of the forecaster with the
    lowest MAE so far.
    """

    def __init__(self, forecasters=None):
        if forecasters is None:
            forecasters = default_battery()
        if not forecasters:
            raise ValueError("need at least one forecaster")
        self.forecasters = list(forecasters)
        self._abs_error = {f.name: 0.0 for f in self.forecasters}
        self._scored = {f.name: 0 for f in self.forecasters}
        self.observations = 0

    def __repr__(self):
        return (
            f"<ForecasterBattery {len(self.forecasters)} predictors, "
            f"{self.observations} observations>"
        )

    def update(self, value):
        """Score pending predictions against ``value``, then ingest it."""
        for forecaster in self.forecasters:
            pending = forecaster.predict()
            if pending is not None:
                self._abs_error[forecaster.name] += abs(pending - value)
                self._scored[forecaster.name] += 1
            forecaster.update(value)
        self.observations += 1

    def mae(self, name):
        """Mean absolute error of one forecaster (inf until scored)."""
        if self._scored[name] == 0:
            return math.inf
        return self._abs_error[name] / self._scored[name]

    def best_name(self):
        """Name of the forecaster with the lowest MAE (ties: battery order)."""
        return min(self.forecasters, key=lambda f: self.mae(f.name)).name

    def forecast(self):
        """(prediction, forecaster_name); (None, name) until warmed up."""
        best = min(self.forecasters, key=lambda f: self.mae(f.name))
        return best.predict(), best.name
