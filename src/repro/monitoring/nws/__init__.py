"""The Network Weather Service (NWS) clone.

The real NWS (Wolski et al.) is three cooperating process kinds, all
reproduced here:

* :class:`NameServer` — naming/discovery: sensors and memories register
  themselves and are looked up by name;
* :class:`NwsMemory` — persistent storage of measurement series;
* :class:`Sensor` subclasses — periodic measurement processes for
  end-to-end bandwidth, latency, CPU availability and free memory.

Forecasts come from a battery of simple predictors run in parallel, with
the historically most accurate one chosen per series — NWS's signature
"dynamic predictor selection" (:mod:`repro.monitoring.nws.forecasting`).
"""

from repro.monitoring.nws.clique import Clique
from repro.monitoring.nws.forecasting import (
    ExponentialSmoothing,
    ForecasterBattery,
    LastValue,
    MedianWindow,
    RunningMean,
    SlidingWindowMean,
)
from repro.monitoring.nws.memory import NwsMemory
from repro.monitoring.nws.nameserver import NameServer
from repro.monitoring.nws.sensor import (
    BandwidthSensor,
    CpuSensor,
    FreeMemorySensor,
    LatencySensor,
    Sensor,
)
from repro.monitoring.nws.series import Measurement, series_key

__all__ = [
    "BandwidthSensor",
    "Clique",
    "CpuSensor",
    "ExponentialSmoothing",
    "ForecasterBattery",
    "FreeMemorySensor",
    "LastValue",
    "LatencySensor",
    "Measurement",
    "MedianWindow",
    "NameServer",
    "NwsMemory",
    "RunningMean",
    "Sensor",
    "SlidingWindowMean",
    "series_key",
]
