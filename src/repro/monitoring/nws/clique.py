"""NWS cliques: token-scheduled bandwidth probing.

If every bandwidth sensor probed on its own timer, probes between the
same set of machines would collide and measure each other instead of
the background conditions.  NWS solves this with *cliques*: the hosts
of a clique pass a token, and only the token holder probes.  Here a
:class:`Clique` owns a set of externally-driven
:class:`BandwidthSensor` objects and fires them strictly one at a time,
round-robin, with a configurable inter-probe gap.
"""

from repro.sim import Interrupt

__all__ = ["Clique"]


class Clique:
    """Round-robin token scheduler over bandwidth sensors.

    Parameters
    ----------
    sim:
        The simulator.
    name:
        Clique name (for the nameserver / diagnostics).
    sensors:
        Sensors created with ``autostart=False``; the clique drives
        their :meth:`measure_once`.
    period:
        Time for one full token rotation; each sensor therefore
        measures every ``period`` seconds, and consecutive probes are
        spaced ``period / len(sensors)`` apart — never concurrent.
    """

    def __init__(self, sim, name, sensors, period=60.0):
        if not sensors:
            raise ValueError("a clique needs at least one sensor")
        if period <= 0:
            raise ValueError("period must be positive")
        for sensor in sensors:
            if sensor.driven:
                raise ValueError(
                    f"{sensor!r} runs its own timer; create clique "
                    "members with autostart=False"
                )
        self.sim = sim
        self.name = name
        self.sensors = list(sensors)
        self.period = float(period)
        #: (time, sensor_name) probe log.
        self.probe_log = []
        self.rotations = 0
        self.process = sim.process(self._run())

    def __repr__(self):
        return (
            f"<Clique {self.name}: {len(self.sensors)} sensors, "
            f"rotation every {self.period:g}s>"
        )

    @property
    def gap(self):
        """Spacing between consecutive probes."""
        return self.period / len(self.sensors)

    def _run(self):
        try:
            while True:
                for sensor in self.sensors:
                    sensor.measure_once()
                    self.probe_log.append(
                        (self.sim.now, sensor.sensor_name)
                    )
                    yield self.sim.timeout(self.gap)
                self.rotations += 1
        except Interrupt:
            return

    def stop(self):
        if self.process.is_alive:
            self.process.interrupt(cause="stopped")
