"""Measurement records and series keys."""

__all__ = ["Measurement", "series_key"]


def series_key(resource, source, target=None):
    """Canonical key for one monitored quantity.

    End-to-end resources (bandwidth, latency) have both endpoints;
    host-local resources (cpu, memory) leave ``target`` as None.
    """
    return (resource, source, target)


class Measurement:
    """One sensor reading."""

    __slots__ = ("resource", "source", "target", "time", "value")

    def __init__(self, resource, source, target, time, value):
        self.resource = resource
        self.source = source
        self.target = target
        self.time = float(time)
        self.value = float(value)

    def __repr__(self):
        where = self.source if self.target is None else (
            f"{self.source}->{self.target}"
        )
        return (
            f"<Measurement {self.resource} {where} "
            f"t={self.time:.2f} v={self.value:.4g}>"
        )

    @property
    def key(self):
        return series_key(self.resource, self.source, self.target)
