"""sysstat utilities: sar, iostat and mpstat over simulated hosts.

The paper measures I/O state with the Linux sysstat package; these are
the simulated equivalents, reading the host models' "kernel counters"
(background-load step series plus live transfer allocations).
"""

from repro.monitoring.sysstat.iostat import IoStat, IoStatReport
from repro.monitoring.sysstat.mpstat import MpStat, MpStatReport
from repro.monitoring.sysstat.sar import Sar

__all__ = [
    "IoStat",
    "IoStatReport",
    "MpStat",
    "MpStatReport",
    "Sar",
]
