"""iostat: per-device I/O statistics.

Reports the disk's utilisation (``%util`` in real iostat output), idle
percentage (the ``IO_P`` input of the paper's cost model), and transfer
throughput since the previous report — iostat's interval semantics.
"""

__all__ = ["IoStat", "IoStatReport"]


class IoStatReport:
    """One iostat sample for one device."""

    def __init__(self, device, time, utilisation, idle_fraction,
                 bytes_per_second, interval):
        self.device = device
        self.time = float(time)
        self.utilisation = float(utilisation)
        self.idle_fraction = float(idle_fraction)
        self.bytes_per_second = float(bytes_per_second)
        self.interval = float(interval)

    def __repr__(self):
        return (
            f"<IoStatReport {self.device} %util="
            f"{self.utilisation * 100:.1f} "
            f"{self.bytes_per_second / 1e6:.2f}MB/s>"
        )


class IoStat:
    """iostat bound to one host's disk."""

    def __init__(self, host):
        self.host = host
        self._last_report_time = host.sim.now
        self._last_bytes = host.disk.channel.bytes_carried

    def __repr__(self):
        return f"<IoStat on {self.host.name}>"

    def report(self, lookback=None):
        """Take a sample.

        ``lookback`` controls the averaging window for background
        utilisation (seconds); by default the window since the previous
        ``report`` call, matching ``iostat <interval>`` output lines.
        """
        sim = self.host.sim
        disk = self.host.disk
        now = sim.now
        window_start = (
            now - lookback if lookback is not None else self._last_report_time
        )
        window_start = min(window_start, now)
        if now > window_start:
            background = disk.background_series.mean(window_start, now)
        else:
            background = disk.background_utilisation

        bytes_now = disk.channel.bytes_carried
        elapsed = now - self._last_report_time
        if elapsed > 0:
            rate = (bytes_now - self._last_bytes) / elapsed
        else:
            rate = disk.channel.allocated
        transfer_util = min(
            1.0, rate / disk.bandwidth
        ) if elapsed > 0 else disk.transfer_utilisation

        utilisation = min(1.0, background + transfer_util)
        report = IoStatReport(
            device=f"{self.host.name}:sda",
            time=now,
            utilisation=utilisation,
            idle_fraction=1.0 - utilisation,
            bytes_per_second=rate,
            interval=elapsed,
        )
        self._last_report_time = now
        self._last_bytes = bytes_now
        return report

    def instantaneous_idle(self):
        """Point-in-time I/O idle fraction (what the cost model samples)."""
        return self.host.disk.io_idle_fraction
