"""sar: the system activity reporter.

The real ``sar`` runs a collector (``sadc``) at a fixed interval and
stores samples in an activity file for later inspection.  This clone
does the same: a periodic process samples CPU, disk and per-NIC-link
activity into :class:`SampleSeries`, and report methods summarise any
window of the collected history.
"""

from repro.sim import Interrupt
from repro.timeseries import SampleSeries

__all__ = ["Sar"]


class Sar:
    """System activity collector + reporter for one host."""

    def __init__(self, grid, host_name, interval=10.0, max_samples=10000):
        if interval <= 0:
            raise ValueError("interval must be positive")
        self.grid = grid
        self.host = grid.host(host_name)
        self.interval = float(interval)
        self.cpu_idle = SampleSeries(max_samples=max_samples)
        self.disk_idle = SampleSeries(max_samples=max_samples)
        #: One series per outgoing link: cumulative bytes carried.
        self.link_bytes = {
            link.key: SampleSeries(max_samples=max_samples)
            for link in grid.topology.outgoing(host_name)
        }
        self.samples_taken = 0
        self.process = grid.sim.process(self._collect())

    def __repr__(self):
        return f"<Sar on {self.host.name} every {self.interval:g}s>"

    def _collect(self):
        try:
            while True:
                self.sample_now()
                yield self.grid.sim.timeout(self.interval)
        except Interrupt:
            return

    def sample_now(self):
        """Take one sample of every tracked activity."""
        now = self.grid.sim.now
        self.cpu_idle.append(now, self.host.cpu.idle_fraction)
        self.disk_idle.append(now, self.host.disk.io_idle_fraction)
        for link in self.grid.topology.outgoing(self.host.name):
            self.link_bytes[link.key].append(now, link.bytes_carried)
        self.samples_taken += 1

    def stop(self):
        if self.process.is_alive:
            self.process.interrupt(cause="stopped")

    # -- reports -------------------------------------------------------------

    def cpu_report(self, t0=None, t1=None):
        """Mean / min / max CPU idle over a window (sar -u)."""
        return {
            "mean_idle": self.cpu_idle.mean(t0, t1),
            "min_idle": self.cpu_idle.minimum(t0, t1),
            "max_idle": self.cpu_idle.maximum(t0, t1),
            "samples": len(self.cpu_idle.window(
                t0 if t0 is not None else float("-inf"),
                t1 if t1 is not None else float("inf"),
            )),
        }

    def disk_report(self, t0=None, t1=None):
        """Mean / min / max I/O idle over a window (sar -d)."""
        return {
            "mean_idle": self.disk_idle.mean(t0, t1),
            "min_idle": self.disk_idle.minimum(t0, t1),
            "max_idle": self.disk_idle.maximum(t0, t1),
        }

    def network_report(self, t0, t1):
        """Per-link mean throughput over [t0, t1] (sar -n DEV)."""
        if t1 <= t0:
            raise ValueError("window must have positive length")
        report = {}
        for key, series in self.link_bytes.items():
            window = series.window(t0, t1)
            if len(window) >= 2:
                (first_t, first_b), (last_t, last_b) = window[0], window[-1]
                elapsed = last_t - first_t
                rate = (last_b - first_b) / elapsed if elapsed > 0 else 0.0
            else:
                rate = 0.0
            report[key] = {"bytes_per_second": rate}
        return report
