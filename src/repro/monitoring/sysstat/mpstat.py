"""mpstat: per-CPU statistics.

Reports idle / user / system percentages.  In the simulated hosts,
background jobs account as user time and transfer work (copies,
interrupts) as system time — a reasonable mapping of what mpstat shows
during a GridFTP transfer.
"""

__all__ = ["MpStat", "MpStatReport"]


class MpStatReport:
    """One mpstat sample over all CPUs of a host."""

    def __init__(self, host_name, time, user_fraction, system_fraction,
                 idle_fraction, cores):
        self.host_name = host_name
        self.time = float(time)
        self.user_fraction = float(user_fraction)
        self.system_fraction = float(system_fraction)
        self.idle_fraction = float(idle_fraction)
        self.cores = int(cores)

    def __repr__(self):
        return (
            f"<MpStatReport {self.host_name} %usr="
            f"{self.user_fraction * 100:.1f} %sys="
            f"{self.system_fraction * 100:.1f} %idle="
            f"{self.idle_fraction * 100:.1f}>"
        )


class MpStat:
    """mpstat bound to one host."""

    def __init__(self, host):
        self.host = host
        self._last_report_time = host.sim.now

    def __repr__(self):
        return f"<MpStat on {self.host.name}>"

    def report(self, lookback=None):
        """Take a sample (window semantics as in :class:`IoStat`)."""
        sim = self.host.sim
        cpu = self.host.cpu
        now = sim.now
        window_start = (
            now - lookback if lookback is not None else self._last_report_time
        )
        window_start = min(window_start, now)
        if now > window_start:
            background_cores = cpu.background_series.mean(window_start, now)
        else:
            background_cores = cpu.background_busy_cores

        user = min(1.0, background_cores / cpu.cores)
        system = min(1.0 - user, cpu.transfer_busy_cores / cpu.cores)
        idle = max(0.0, 1.0 - user - system)
        self._last_report_time = now
        return MpStatReport(
            host_name=self.host.name,
            time=now,
            user_fraction=user,
            system_fraction=system,
            idle_fraction=idle,
            cores=cpu.cores,
        )

    def instantaneous_idle(self):
        """Point-in-time CPU idle fraction."""
        return self.host.cpu.idle_fraction
