"""Monitoring and information services.

Three subsystems feed the replica selection cost model, matching the
paper's measurement stack one-to-one:

* :mod:`repro.monitoring.nws` — a Network Weather Service clone
  (nameserver / memory / sensors / adaptive forecasters) supplying
  bandwidth measurements and short-term forecasts (``BW_P``);
* :mod:`repro.monitoring.mds` — a Globus MDS-style information service
  (GRIS per host, GIIS aggregation, TTL caching) supplying CPU state
  (``CPU_P``);
* :mod:`repro.monitoring.sysstat` — sar / iostat / mpstat equivalents
  reading the simulated kernel counters, supplying I/O state (``IO_P``).

:class:`repro.monitoring.information.InformationService` is the facade
the paper calls "the information server": one query point for all three
factors.
"""

from repro.monitoring.information import InformationService

__all__ = ["InformationService"]
