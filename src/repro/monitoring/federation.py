"""Hierarchical (per-region) monitoring federation.

The paper's testbed monitors three sites with an all-pairs NWS mesh and
one GIIS — O(N^2) bandwidth sensors, affordable at N=12 hosts and
ruinous at a thousand sites.  Real deployments (and the topology
presets' ``"regional"`` monitoring layout) go hierarchical instead:

* every *region* runs its own GIIS (at the region hub host) indexing
  only its own GRIS providers, and its own NWS memory fed by regional
  sensors;
* bandwidth sensors follow the hierarchy — one pair per site
  (site representative <-> region hub) plus the hub <-> hub mesh —
  roughly ``2*sites + regions^2`` sensors instead of ``hosts^2``;
* the selection host runs the two federation frontends in this module,
  which present the exact interfaces
  :class:`~repro.monitoring.information.InformationService` already
  consumes, so replica selection is unchanged.

:class:`FederatedGIIS` answers host queries by forwarding to the
owning region's GIIS (charging the selection-host -> region-hub round
trip on top-level cache misses, as MDS GIIS-to-GIIS federation does).

:class:`FederatedNwsMemory` answers ``bandwidth`` forecasts for pairs
nobody measures directly by composing measured segments — candidate
rep -> candidate hub, hub -> hub, hub -> client rep — and returning the
bottleneck (minimum), the standard path-composition estimate.  Pairs
with no composable segments return ``(None, None)``, which the
information service already treats as a cold start (live probe).
"""

from repro.monitoring.mds import GIIS, MdsUnavailableError

__all__ = ["FederatedGIIS", "FederatedNwsMemory"]


class FederatedGIIS(GIIS):
    """Top-level GIIS delegating to per-region GIISes.

    Keeps the parent's TTL cache, hit/miss counters and blackout
    switch; only the fetch path differs — a top-level miss pays the
    round trip to the owning region's hub and then that GIIS's own
    query cost (its cache absorbs the hub -> host hop).
    """

    def __init__(self, grid, host_name, ttl=30.0):
        super().__init__(grid, host_name, ttl=ttl)
        #: region name -> region GIIS.
        self._regions = {}
        #: host name -> owning region GIIS.
        self._home = {}

    def __repr__(self):
        state = "" if self.is_available else " DOWN"
        return (
            f"<FederatedGIIS on {self.host_name}{state}, "
            f"{len(self._regions)} regions, {len(self._home)} hosts>"
        )

    def add_region(self, name, region_giis):
        """Federate one region GIIS (its providers become queryable)."""
        if name in self._regions:
            raise ValueError(f"region {name!r} already federated")
        self._regions[name] = region_giis
        for host in region_giis.providers():
            if host in self._home:
                raise ValueError(
                    f"host {host!r} already owned by another region"
                )
            self._home[host] = region_giis

    def regions(self):
        """Names of federated regions."""
        return sorted(self._regions)

    def region_giis(self, name):
        """The region GIIS federated under ``name``."""
        return self._regions[name]

    def providers(self):
        return sorted(self._home)

    def query(self, host_name):
        """Fetch a host's entry through its region (a generator).

        Top-level cache hits are free; misses pay the federation round
        trip (selection host -> region hub) and then the region GIIS's
        own query, whose cache usually absorbs the hub -> host hop.
        """
        if not self.is_available:
            self.refused_queries += 1
            raise MdsUnavailableError(
                f"GIIS on {self.host_name} is down"
            )
        region = self._home.get(host_name)
        if region is None:
            raise KeyError(f"no region GIIS owns {host_name!r}")
        now = self.grid.sim.now
        cached = self._cache.get(host_name)
        if cached is not None and now - cached["time"] <= self.ttl:
            self.cache_hits += 1
            return dict(cached)
        self.cache_misses += 1
        if region.host_name != self.host_name:
            rtt = self.grid.path(self.host_name, region.host_name).rtt
            yield self.grid.sim.timeout(rtt)
        entry = yield from region.query(host_name)
        self._cache[host_name] = dict(entry)
        return dict(entry)


class FederatedNwsMemory:
    """Selection-host frontend over the per-region NWS memories.

    Implements the :class:`~repro.monitoring.nws.memory.NwsMemory`
    surface the information service and the chaos engine use —
    ``forecast``/``latest``/``store``/``freeze``/``thaw`` — on top of
    the regional memories, composing unmeasured bandwidth pairs from
    measured segments.

    Parameters
    ----------
    sim:
        The simulator (time source for nothing yet, kept for interface
        parity with :class:`NwsMemory`).
    name:
        Registration name (``memory@<selection_host>``).
    region_of:
        host name -> region name.
    rep_of:
        host name -> its site's representative host (the host whose
        pair series the sensors actually measure).
    hub_of:
        region name -> the region's hub host.
    memories:
        region name -> that region's :class:`NwsMemory`.
    """

    def __init__(self, sim, name, region_of, rep_of, hub_of, memories):
        self.sim = sim
        self.name = name
        self._region_of = dict(region_of)
        self._rep_of = dict(rep_of)
        self._hub_of = dict(hub_of)
        self._memories = dict(memories)
        self._frozen = False

    def __repr__(self):
        state = " FROZEN" if self._frozen else ""
        return (
            f"<FederatedNwsMemory {self.name}{state} "
            f"{len(self._memories)} regions>"
        )

    # -- segment plumbing -------------------------------------------------

    def _segments(self, src, dst):
        """Measured (a, b) hops composing the src -> dst path, or None
        when either endpoint is unknown to the federation."""
        src_region = self._region_of.get(src)
        dst_region = self._region_of.get(dst)
        if src_region is None or dst_region is None:
            return None
        src_rep = self._rep_of[src]
        dst_rep = self._rep_of[dst]
        src_hub = self._hub_of[src_region]
        dst_hub = self._hub_of[dst_region]
        segments = []
        if src_rep != src_hub:
            segments.append((src_rep, src_hub))
        if src_hub != dst_hub:
            segments.append((src_hub, dst_hub))
        if dst_hub != dst_rep:
            segments.append((dst_hub, dst_rep))
        return segments

    def _segment_memory(self, a, b):
        """The regional memory owning the (a, b) sensor series, or None."""
        from repro.monitoring.nws.series import series_key

        key = series_key("bandwidth", a, b)
        for host in (a, b):
            memory = self._memories.get(self._region_of.get(host))
            if memory is not None and memory.has_series(key):
                return memory, key
        return None, key

    def _home_memory(self, key):
        """The regional memory owning an exact (non-composed) key."""
        resource, source, _target = key
        memory = self._memories.get(self._region_of.get(source))
        if memory is not None and memory.has_series(key):
            return memory
        for name in sorted(self._memories):
            if self._memories[name].has_series(key):
                return self._memories[name]
        return None

    # -- NwsMemory surface ------------------------------------------------

    def forecast(self, key):
        """(prediction, forecaster_name), composing bandwidth pairs.

        Exactly-measured series answer directly from their home
        memory.  Unmeasured bandwidth pairs compose the bottleneck of
        their measured segments (name ``"federated"``); anything else
        missing returns ``(None, None)`` — the information service's
        cold-start path.
        """
        home = self._home_memory(key)
        if home is not None:
            return home.forecast(key)
        resource, source, target = key
        if resource != "bandwidth" or target is None:
            return None, None
        segments = self._segments(source, target)
        if not segments:
            return None, None
        values = []
        for a, b in segments:
            memory, seg_key = self._segment_memory(a, b)
            if memory is None:
                return None, None
            value, _name = memory.forecast(seg_key)
            if value is None:
                return None, None
            values.append(value)
        return min(values), "federated"

    def latest(self, key):
        """Most recent (time, value), conservatively aged for composed
        pairs: the *oldest* segment reading, so staleness discounting
        sees the weakest link."""
        home = self._home_memory(key)
        if home is not None:
            return home.latest(key)
        resource, source, target = key
        if resource != "bandwidth" or target is None:
            return None
        segments = self._segments(source, target)
        if not segments:
            return None
        oldest = None
        for a, b in segments:
            memory, seg_key = self._segment_memory(a, b)
            if memory is None:
                return None
            reading = memory.latest(seg_key)
            if reading is None:
                return None
            if oldest is None or reading[0] < oldest[0]:
                oldest = reading
        return oldest

    def store(self, measurement):
        """Route a measurement to its source host's regional memory."""
        memory = self._memories.get(
            self._region_of.get(measurement.source)
        )
        if memory is None:
            raise KeyError(
                f"no regional memory owns host {measurement.source!r}"
            )
        memory.store(measurement)

    def keys(self):
        """Union of every regional memory's stored keys."""
        merged = set()
        for name in sorted(self._memories):
            merged.update(self._memories[name].keys())
        return sorted(merged, key=str)

    def has_series(self, key):
        return self._home_memory(key) is not None

    def series(self, key):
        home = self._home_memory(key)
        if home is None:
            raise KeyError(key)
        return home.series(key)

    def region_memory(self, name):
        """The regional :class:`NwsMemory` for region ``name``."""
        return self._memories[name]

    # -- chaos surface ----------------------------------------------------

    @property
    def is_frozen(self):
        return self._frozen

    def freeze(self):
        """Stale-reading window across the whole federation."""
        self._frozen = True
        for name in sorted(self._memories):
            self._memories[name].freeze()

    def thaw(self):
        self._frozen = False
        for name in sorted(self._memories):
            self._memories[name].thaw()

    @property
    def measurements_dropped(self):
        """Measurements dropped while frozen, federation-wide."""
        return sum(
            self._memories[name].measurements_dropped
            for name in sorted(self._memories)
        )
