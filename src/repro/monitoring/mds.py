"""Globus MDS: the Monitoring and Discovery Service.

MDS2 organises information as per-host providers (GRIS — Grid Resource
Information Service) aggregated by an index service (GIIS — Grid Index
Information Service) that caches entries with a TTL.  The paper reads
the CPU state of candidate replica hosts through MDS; here the GIIS
query is a generator that charges a network round trip on cache misses
and nothing on hits, matching MDS's caching behaviour.
"""

__all__ = ["GIIS", "GRIS", "MdsUnavailableError"]


class MdsUnavailableError(Exception):
    """The GIIS is down (blackout); queries cannot be answered."""


class GRIS:
    """Per-host resource information provider."""

    def __init__(self, grid, host_name):
        self.grid = grid
        self.host = grid.host(host_name)
        self.snapshots_served = 0

    def __repr__(self):
        return f"<GRIS on {self.host.name}>"

    def snapshot(self):
        """Current resource description of the host (an LDAP-entry-like
        dict in real MDS)."""
        host = self.host
        self.snapshots_served += 1
        return {
            "hostname": host.name,
            "site": host.site,
            "time": self.grid.sim.now,
            "cpu.count": host.cpu.cores,
            "cpu.speed_ghz": host.cpu.frequency_ghz,
            "cpu.idle_fraction": host.cpu.idle_fraction,
            "memory.total_bytes": host.memory_bytes,
            "disk.total_bytes": host.disk.capacity_bytes,
            "disk.free_bytes": host.filesystem.free_bytes,
            "disk.io_idle_fraction": host.disk.io_idle_fraction,
        }


class GIIS:
    """Index service aggregating GRIS providers with a TTL cache."""

    def __init__(self, grid, host_name, ttl=30.0):
        if ttl < 0:
            raise ValueError("ttl must be non-negative")
        self.grid = grid
        self.host_name = host_name
        self.ttl = float(ttl)
        self._providers = {}
        self._cache = {}
        self.cache_hits = 0
        self.cache_misses = 0
        self._available = True
        #: Queries refused while the index was blacked out.
        self.refused_queries = 0

    def __repr__(self):
        state = "" if self._available else " DOWN"
        return (
            f"<GIIS on {self.host_name}{state}, "
            f"{len(self._providers)} providers, ttl={self.ttl:g}s>"
        )

    @property
    def is_available(self):
        """False while the index service is blacked out."""
        return self._available

    def set_down(self):
        """Black out the index: queries raise :class:`MdsUnavailableError`."""
        self._available = False

    def set_up(self):
        """Restore a blacked-out index (its cache survives)."""
        self._available = True

    def register(self, gris):
        """Register a GRIS provider."""
        name = gris.host.name
        if name in self._providers:
            raise ValueError(f"GRIS for {name!r} already registered")
        self._providers[name] = gris

    def providers(self):
        return sorted(self._providers)

    def query(self, host_name):
        """Fetch a host's entry; a generator returning the info dict.

        Cache hits are free; misses cost a round trip from the GIIS host
        to the GRIS host (the LDAP search), as in MDS2.  While the index
        is blacked out every query raises :class:`MdsUnavailableError`
        (consumers degrade to their last known good entries).
        """
        if not self._available:
            self.refused_queries += 1
            raise MdsUnavailableError(
                f"GIIS on {self.host_name} is down"
            )
        if host_name not in self._providers:
            raise KeyError(f"no GRIS registered for {host_name!r}")
        now = self.grid.sim.now
        cached = self._cache.get(host_name)
        if cached is not None and now - cached["time"] <= self.ttl:
            self.cache_hits += 1
            return dict(cached)
        self.cache_misses += 1
        if host_name != self.host_name:
            rtt = self.grid.path(self.host_name, host_name).rtt
            yield self.grid.sim.timeout(rtt)
        entry = self._providers[host_name].snapshot()
        self._cache[host_name] = entry
        return dict(entry)

    def query_all(self):
        """Fetch every registered host's entry (generator returning dict)."""
        results = {}
        for name in self.providers():
            results[name] = yield from self.query(name)
        return results

    def search(self, predicate):
        """LDAP-style filtered search over all providers.

        ``predicate`` takes an entry dict and returns True to include
        it.  A generator returning the matching entries (fetch costs as
        in :meth:`query_all`)::

            idle = yield from giis.search(
                lambda e: e["cpu.idle_fraction"] > 0.5)
        """
        entries = yield from self.query_all()
        return [
            entry for entry in entries.values() if predicate(entry)
        ]

    def find_hosts_with_capacity(self, min_free_bytes=0.0,
                                 min_cpu_idle=0.0):
        """Common search: hosts with disk space and CPU headroom.

        A generator returning host names sorted by descending CPU idle.
        """
        matches = yield from self.search(
            lambda e: (
                e["disk.free_bytes"] >= min_free_bytes
                and e["cpu.idle_fraction"] >= min_cpu_idle
            )
        )
        matches.sort(key=lambda e: (-e["cpu.idle_fraction"],
                                    e["hostname"]))
        return [entry["hostname"] for entry in matches]

    def invalidate(self, host_name=None):
        """Drop cached entries (all if ``host_name`` is None)."""
        if host_name is None:
            self._cache.clear()
        else:
            self._cache.pop(host_name, None)
