"""The information server: one query point for the three cost factors.

The paper's replica selection server "sends the possible destination
locations to [an] information server, which provides the performance of
measurements and predictions" of the three system factors.  This facade
is that server: it answers

* ``BW_P(i, j)`` from the NWS memory's forecasts (fraction of the path's
  theoretical bandwidth currently attainable),
* ``CPU_P(j)`` from MDS (GIIS query, TTL-cached),
* ``IO_P(j)`` from a remote iostat invocation (one round trip).

Query methods are generators so they charge simulated time where the
real system would block on the network.

Every factor degrades explicitly instead of crashing when its source
goes dark (see :mod:`repro.core.degradation` and ``docs/chaos.md``):
stale NWS forecasts are discounted by age, an MDS blackout falls back
to the last known good entry, iostat against a crashed host falls back
likewise, and NaN/absent probes are replaced by pessimistic defaults.
Each fallback emits a ``degradation.fallback`` event and bumps
:attr:`InformationService.fallbacks`.
"""

from repro.core.degradation import DegradationPolicy, LastKnownGood
from repro.monitoring.mds import MdsUnavailableError
from repro.monitoring.nws.series import series_key
from repro.monitoring.sysstat.iostat import IoStat

__all__ = ["InformationService", "SiteFactors"]


class SiteFactors:
    """The three cost-model inputs for one candidate replica site."""

    __slots__ = ("source", "candidate", "bandwidth_fraction", "cpu_idle",
                 "io_idle", "forecaster", "degraded")

    def __init__(self, source, candidate, bandwidth_fraction, cpu_idle,
                 io_idle, forecaster=None, degraded=()):
        self.source = source
        self.candidate = candidate
        self.bandwidth_fraction = float(bandwidth_fraction)
        self.cpu_idle = float(cpu_idle)
        self.io_idle = float(io_idle)
        self.forecaster = forecaster
        #: Names of factors served under a degradation policy (stale,
        #: last-known-good or default) rather than from a live source.
        self.degraded = tuple(degraded)

    def __repr__(self):
        flags = f" degraded={','.join(self.degraded)}" if self.degraded else ""
        return (
            f"<SiteFactors {self.source}->{self.candidate} "
            f"BW_P={self.bandwidth_fraction:.3f} "
            f"CPU_P={self.cpu_idle:.3f} IO_P={self.io_idle:.3f}{flags}>"
        )

    def as_dict(self):
        return {
            "source": self.source,
            "candidate": self.candidate,
            "bandwidth_fraction": self.bandwidth_fraction,
            "cpu_idle": self.cpu_idle,
            "io_idle": self.io_idle,
            "forecaster": self.forecaster,
            "degraded": list(self.degraded),
        }


class InformationService:
    """Aggregates NWS, MDS and sysstat for the selection server."""

    service_name = "information"

    def __init__(self, grid, host_name, nws_memory, giis, policy=None):
        self.grid = grid
        self.host_name = host_name
        self.nws_memory = nws_memory
        self.giis = giis
        self.policy = policy or DegradationPolicy()
        self._iostats = {}
        self._last_good = LastKnownGood()
        #: Count of factor queries answered by a degradation fallback.
        self.fallbacks = 0
        grid.register_service(host_name, self.service_name, self)

    def __repr__(self):
        return f"<InformationService on {self.host_name}>"

    # -- degradation plumbing -------------------------------------------------

    def _degrade(self, factor, candidate, reason, value, age=None):
        """Record and report one fallback decision; returns the value."""
        self.fallbacks += 1
        obs = self.grid.obs
        if obs.enabled:
            obs.metrics.counter(
                "degradation.fallbacks", factor=factor
            ).inc()
            obs.events.emit(
                "degradation.fallback", factor=factor,
                candidate=candidate, reason=reason, value=value,
                age=age,
            )
        return value

    def _last_good_or_default(self, factor, candidate, reason):
        """Serve the aged last-known-good reading, or the default."""
        cached = self._last_good.lookup((factor, candidate))
        if cached is None:
            return self._degrade(
                factor, candidate, f"{reason}:no-history",
                self.policy.default_for(factor),
            )
        then, value = cached
        age = self.grid.sim.now - then
        degraded = max(
            self.policy.default_for(factor),
            self.policy.apply(value, age),
        )
        return self._degrade(
            factor, candidate, f"{reason}:last-known-good", degraded,
            age=age,
        )

    # -- individual factors ---------------------------------------------------

    def bandwidth_forecast(self, src, dst):
        """NWS forecast of attainable bandwidth src→dst, bytes/s.

        Returns (value, forecaster_name).  Falls back to a live probe if
        the NWS has no data for the pair yet (cold start).
        """
        key = series_key("bandwidth", src, dst)
        forecast, name = self.nws_memory.forecast(key)
        if forecast is None:
            path = self.grid.path(src, dst)
            cap = self.grid.tcp_model.stream_cap(path)
            return (
                self.grid.network.probe_rate(src, dst, cap=cap),
                "live-probe",
            )
        return forecast, name

    def bandwidth_fraction(self, src, dst):
        """``BW_P``: forecast bandwidth over the path's theoretical best.

        The paper defines BW_P as "the current bandwidth divided [by]
        the highest theoretical bandwidth", so the denominator is the
        narrowest *raw* link capacity on the route — not the TCP-capped
        attainable rate.  Loopback paths score a full 1.0.

        A forecast whose newest underlying reading is older than the
        policy's ``max_age`` (sensors blacked out, memory frozen) is
        discounted by the age penalty, floored at the pessimistic
        default — stale optimism is not trusted forever.
        """
        path = self.grid.path(src, dst)
        if path.is_loopback:
            return 1.0, "loopback"
        forecast, name = self.bandwidth_forecast(src, dst)
        best = path.raw_capacity
        if best <= 0:
            return 0.0, name
        clean, dirty = self.policy.sanitize(
            "bandwidth_fraction", forecast / best
        )
        if dirty:
            return self._degrade(
                "bandwidth_fraction", src, "non-finite-forecast", clean
            ), f"sanitized({name})"
        latest = self.nws_memory.latest(series_key("bandwidth", src, dst))
        if latest is not None:
            age = self.grid.sim.now - latest[0]
            if self.policy.is_stale(age):
                degraded = max(
                    self.policy.default_for("bandwidth_fraction"),
                    self.policy.apply(clean, age),
                )
                return self._degrade(
                    "bandwidth_fraction", src, "stale-forecast",
                    degraded, age=age,
                ), f"stale({name})"
        self._last_good.record(
            ("bandwidth_fraction", src), self.grid.sim.now, clean
        )
        return clean, name

    def cpu_idle(self, host_name):
        """``CPU_P`` via MDS; a generator returning the idle fraction.

        During an MDS blackout the last known good entry is served
        (discounted by age), or the pessimistic default when the host
        has never been seen.
        """
        try:
            entry = yield from self.giis.query(host_name)
        except MdsUnavailableError:
            return self._last_good_or_default(
                "cpu_idle", host_name, "mds-down"
            )
        clean, dirty = self.policy.sanitize(
            "cpu_idle", entry.get("cpu.idle_fraction")
        )
        if dirty:
            return self._degrade(
                "cpu_idle", host_name, "non-finite-entry", clean
            )
        self._last_good.record(
            ("cpu_idle", host_name), self.grid.sim.now, clean
        )
        return clean

    def io_idle(self, host_name):
        """``IO_P`` via remote iostat; a generator (one round trip).

        A crashed candidate host cannot answer iostat: the last known
        good reading is served (discounted by age) or the pessimistic
        default.
        """
        if host_name != self.host_name:
            rtt = self.grid.path(self.host_name, host_name).rtt
            yield self.grid.sim.timeout(rtt)
        host = self.grid.host(host_name)
        if not host.is_up:
            return self._last_good_or_default(
                "io_idle", host_name, "host-down"
            )
        if host_name not in self._iostats:
            self._iostats[host_name] = IoStat(host)
        clean, dirty = self.policy.sanitize(
            "io_idle", self._iostats[host_name].instantaneous_idle()
        )
        if dirty:
            return self._degrade(
                "io_idle", host_name, "non-finite-probe", clean
            )
        self._last_good.record(
            ("io_idle", host_name), self.grid.sim.now, clean
        )
        return clean

    # -- aggregate query --------------------------------------------------------

    def site_factors(self, client_name, candidate_name):
        """All three factors for one candidate; a generator returning
        :class:`SiteFactors`.  Never raises on missing or stale inputs —
        each factor degrades per the policy instead."""
        before = self.fallbacks
        bw_fraction, forecaster = self.bandwidth_fraction(
            candidate_name, client_name
        )
        bw_degraded = self.fallbacks > before

        before = self.fallbacks
        cpu = yield from self.cpu_idle(candidate_name)
        cpu_degraded = self.fallbacks > before

        before = self.fallbacks
        io = yield from self.io_idle(candidate_name)
        io_degraded = self.fallbacks > before

        degraded = []
        if bw_degraded:
            degraded.append("bandwidth_fraction")
        if cpu_degraded:
            degraded.append("cpu_idle")
        if io_degraded:
            degraded.append("io_idle")
        return SiteFactors(
            source=client_name,
            candidate=candidate_name,
            bandwidth_fraction=bw_fraction,
            cpu_idle=cpu,
            io_idle=io,
            forecaster=forecaster,
            degraded=degraded,
        )
