"""The information server: one query point for the three cost factors.

The paper's replica selection server "sends the possible destination
locations to [an] information server, which provides the performance of
measurements and predictions" of the three system factors.  This facade
is that server: it answers

* ``BW_P(i, j)`` from the NWS memory's forecasts (fraction of the path's
  theoretical bandwidth currently attainable),
* ``CPU_P(j)`` from MDS (GIIS query, TTL-cached),
* ``IO_P(j)`` from a remote iostat invocation (one round trip).

Query methods are generators so they charge simulated time where the
real system would block on the network.
"""

from repro.monitoring.nws.series import series_key
from repro.monitoring.sysstat.iostat import IoStat

__all__ = ["InformationService", "SiteFactors"]


class SiteFactors:
    """The three cost-model inputs for one candidate replica site."""

    __slots__ = ("source", "candidate", "bandwidth_fraction", "cpu_idle",
                 "io_idle", "forecaster")

    def __init__(self, source, candidate, bandwidth_fraction, cpu_idle,
                 io_idle, forecaster=None):
        self.source = source
        self.candidate = candidate
        self.bandwidth_fraction = float(bandwidth_fraction)
        self.cpu_idle = float(cpu_idle)
        self.io_idle = float(io_idle)
        self.forecaster = forecaster

    def __repr__(self):
        return (
            f"<SiteFactors {self.source}->{self.candidate} "
            f"BW_P={self.bandwidth_fraction:.3f} "
            f"CPU_P={self.cpu_idle:.3f} IO_P={self.io_idle:.3f}>"
        )

    def as_dict(self):
        return {
            "source": self.source,
            "candidate": self.candidate,
            "bandwidth_fraction": self.bandwidth_fraction,
            "cpu_idle": self.cpu_idle,
            "io_idle": self.io_idle,
            "forecaster": self.forecaster,
        }


class InformationService:
    """Aggregates NWS, MDS and sysstat for the selection server."""

    service_name = "information"

    def __init__(self, grid, host_name, nws_memory, giis):
        self.grid = grid
        self.host_name = host_name
        self.nws_memory = nws_memory
        self.giis = giis
        self._iostats = {}
        grid.register_service(host_name, self.service_name, self)

    def __repr__(self):
        return f"<InformationService on {self.host_name}>"

    # -- individual factors ---------------------------------------------------

    def bandwidth_forecast(self, src, dst):
        """NWS forecast of attainable bandwidth src→dst, bytes/s.

        Returns (value, forecaster_name).  Falls back to a live probe if
        the NWS has no data for the pair yet (cold start).
        """
        key = series_key("bandwidth", src, dst)
        forecast, name = self.nws_memory.forecast(key)
        if forecast is None:
            path = self.grid.path(src, dst)
            cap = self.grid.tcp_model.stream_cap(path)
            return (
                self.grid.network.probe_rate(src, dst, cap=cap),
                "live-probe",
            )
        return forecast, name

    def bandwidth_fraction(self, src, dst):
        """``BW_P``: forecast bandwidth over the path's theoretical best.

        The paper defines BW_P as "the current bandwidth divided [by]
        the highest theoretical bandwidth", so the denominator is the
        narrowest *raw* link capacity on the route — not the TCP-capped
        attainable rate.  Loopback paths score a full 1.0.
        """
        path = self.grid.path(src, dst)
        if path.is_loopback:
            return 1.0, "loopback"
        forecast, name = self.bandwidth_forecast(src, dst)
        best = path.raw_capacity
        if best <= 0:
            return 0.0, name
        return min(1.0, max(0.0, forecast / best)), name

    def cpu_idle(self, host_name):
        """``CPU_P`` via MDS; a generator returning the idle fraction."""
        entry = yield from self.giis.query(host_name)
        return entry["cpu.idle_fraction"]

    def io_idle(self, host_name):
        """``IO_P`` via remote iostat; a generator (one round trip)."""
        if host_name != self.host_name:
            rtt = self.grid.path(self.host_name, host_name).rtt
            yield self.grid.sim.timeout(rtt)
        if host_name not in self._iostats:
            self._iostats[host_name] = IoStat(self.grid.host(host_name))
        return self._iostats[host_name].instantaneous_idle()

    # -- aggregate query --------------------------------------------------------

    def site_factors(self, client_name, candidate_name):
        """All three factors for one candidate; a generator returning
        :class:`SiteFactors`."""
        bw_fraction, forecaster = self.bandwidth_fraction(
            candidate_name, client_name
        )
        cpu = yield from self.cpu_idle(candidate_name)
        io = yield from self.io_idle(candidate_name)
        return SiteFactors(
            source=client_name,
            candidate=candidate_name,
            bandwidth_fraction=bw_fraction,
            cpu_idle=cpu,
            io_idle=io,
            forecaster=forecaster,
        )
