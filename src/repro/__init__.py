"""repro — a simulated Data Grid with cost-model replica selection.

A from-scratch reproduction of Yang, Chen, Li & Hsu, *Performance
Analysis of Applying Replica Selection Technology for Data Grid
Environments* (PaCT 2005): a discrete-event-simulated Data Grid with
GridFTP (parallel/striped/third-party/partial transfers), NWS-style
monitoring and forecasting, MDS and sysstat equivalents, a replica
catalog, and the paper's weighted cost model for replica selection.

Quickstart::

    from repro.testbed import build_testbed
    from repro.units import megabytes

    testbed = build_testbed(seed=0)
    testbed.catalog.create_logical_file("file-a", megabytes(256))
    for host in ["alpha4", "hit0", "lz02"]:
        testbed.grid.host(host).filesystem.create(
            "file-a", megabytes(256))
        testbed.catalog.register_replica("file-a", host)
    testbed.warm_up(120.0)

    grid = testbed.grid
    decision, record = grid.sim.run(until=grid.sim.process(
        testbed.selection_server.fetch("alpha1", "file-a")))
    print(decision.ranking(), record.elapsed)

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured record.
"""

from repro.grid import DataGrid
from repro.sim import Simulator

__version__ = "1.0.0"

__all__ = ["DataGrid", "Simulator", "__version__"]
